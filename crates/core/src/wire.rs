/// Approximate encoded size of a value, for message byte accounting.
///
/// The experiments compare protocols by relative byte volume under a
/// nominal binary encoding (node ids are 4 bytes, enum tags 1 byte); an
/// implementation should return what a straightforward codec would emit.
pub trait WireSize {
    /// Approximate encoded size in bytes.
    fn wire_size(&self) -> usize;
}

impl WireSize for () {
    fn wire_size(&self) -> usize {
        0
    }
}

macro_rules! impl_wire_size_for_int {
    ($($t:ty),*) => {
        $(impl WireSize for $t {
            fn wire_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_wire_size_for_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

impl WireSize for String {
    fn wire_size(&self) -> usize {
        4 + self.len()
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        4 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_size)
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

impl WireSize for precipice_graph::NodeId {
    fn wire_size(&self) -> usize {
        4
    }
}

impl WireSize for precipice_graph::Region {
    fn wire_size(&self) -> usize {
        4 + 4 * self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use precipice_graph::{NodeId, Region};

    #[test]
    fn primitive_sizes() {
        assert_eq!(().wire_size(), 0);
        assert_eq!(0u32.wire_size(), 4);
        assert_eq!(0u64.wire_size(), 8);
        assert_eq!(NodeId(7).wire_size(), 4);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!("ab".to_string().wire_size(), 6);
        assert_eq!(vec![1u32, 2, 3].wire_size(), 16);
        assert_eq!(Some(1u64).wire_size(), 9);
        assert_eq!(None::<u64>.wire_size(), 1);
        assert_eq!((NodeId(0), 2u32).wire_size(), 8);
        let r: Region = [NodeId(1), NodeId(2)].into_iter().collect();
        assert_eq!(r.wire_size(), 12);
    }
}
