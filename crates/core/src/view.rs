use std::cmp::Ordering;
use std::fmt;

use precipice_graph::{rank_cmp_keyed, Region, Topology};

/// A proposed view: a candidate crashed [`Region`] together with its
/// (cached) border.
///
/// The border is what makes a view actionable: it is both the
/// *constituency* that must agree on the view (the participants of the
/// consensus instance indexed by it) and a component of the ranking
/// relation `≻` used for arbitration. Both are pure functions of the
/// region and the knowledge graph, so every node derives the same border
/// for the same region — views can be shipped as regions and re-derived,
/// but caching avoids recomputing borders on every comparison.
///
/// # Example
///
/// ```
/// use precipice_core::View;
/// use precipice_graph::{Graph, NodeId, Region};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// let v = View::new(&g, Region::from_iter([NodeId(1), NodeId(2)]));
/// assert_eq!(v.border().as_slice(), &[NodeId(0), NodeId(3)]);
/// assert_eq!(v.participants(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct View {
    region: Region,
    border: Region,
}

impl View {
    /// Builds the view for `region`, deriving its border from `topology`.
    ///
    /// For [`Graph`](precipice_graph::Graph)-backed topologies the border
    /// comes out of the graph's shared region-border memo, so every node
    /// building a view for the same region pays for one bitset border
    /// computation system-wide.
    pub fn new<T: Topology>(topology: &T, region: Region) -> Self {
        let border = topology.border_region(&region);
        View { region, border }
    }

    /// Reassembles a view from a region and an externally supplied border
    /// (e.g. from a received [`Message`](crate::Message)).
    ///
    /// The caller asserts that `border = border(region)` on the system's
    /// knowledge graph; all nodes share that graph, so a well-formed peer
    /// can only send the correct border.
    pub fn from_parts(region: Region, border: Region) -> Self {
        View { region, border }
    }

    /// The crashed region this view claims.
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// Consumes the view, yielding `(region, border)` without cloning.
    pub fn into_parts(self) -> (Region, Region) {
        (self.region, self.border)
    }

    /// The border of the region — the instance's participants.
    pub fn border(&self) -> &Region {
        &self.border
    }

    /// Number of participants `|border(V)|`.
    pub fn participants(&self) -> usize {
        self.border.len()
    }

    /// Number of communication rounds the flooding instance for this view
    /// runs: `max(1, |border(V)| − 1)`.
    ///
    /// The paper's Algorithm 1 uses `|B| − 1` rounds; the `max(1, …)`
    /// clamp covers the degenerate single-participant border, where the
    /// lone node completes one self-round and decides (see the
    /// [`crate::instance`] notes on deviations from the pseudocode).
    pub fn total_rounds(&self) -> u32 {
        (self.border.len().saturating_sub(1)).max(1) as u32
    }

    /// Ranking comparison `self ≻ other` ⇔ `Ordering::Greater`
    /// (paper §3.1), using the cached borders.
    pub fn rank_cmp(&self, other: &View) -> Ordering {
        rank_cmp_keyed(
            &self.region,
            self.border.len(),
            &other.region,
            other.border.len(),
        )
    }
}

impl fmt::Debug for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "View({} ⊣ {})", self.region, self.border)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use precipice_graph::{Graph, NodeId};

    fn g() -> Graph {
        // 0 - 1 - 2 - 3 - 4 path
        Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    fn region(ids: &[u32]) -> Region {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn border_is_derived() {
        let v = View::new(&g(), region(&[2]));
        assert_eq!(v.border(), &region(&[1, 3]));
        assert_eq!(v.participants(), 2);
    }

    #[test]
    fn total_rounds_formula() {
        let graph = g();
        assert_eq!(View::new(&graph, region(&[2])).total_rounds(), 1); // |B|=2
        assert_eq!(View::new(&graph, region(&[1, 2, 3])).total_rounds(), 1); // |B|=2
        assert_eq!(View::new(&graph, region(&[0])).total_rounds(), 1); // |B|=1 clamp
        let star = precipice_graph::star(5);
        assert_eq!(View::new(&star, region(&[0])).total_rounds(), 3); // |B|=4
    }

    #[test]
    fn rank_cmp_matches_graph_ranking() {
        let graph = g();
        let small = View::new(&graph, region(&[1]));
        let big = View::new(&graph, region(&[1, 2]));
        assert_eq!(big.rank_cmp(&small), Ordering::Greater);
        assert_eq!(small.rank_cmp(&big), Ordering::Less);
        assert_eq!(small.rank_cmp(&small.clone()), Ordering::Equal);
    }

    #[test]
    fn from_parts_round_trips() {
        let graph = g();
        let v = View::new(&graph, region(&[1, 2]));
        let rebuilt = View::from_parts(v.region().clone(), v.border().clone());
        assert_eq!(v, rebuilt);
    }

    #[test]
    fn debug_and_display() {
        let v = View::new(&g(), region(&[2]));
        assert_eq!(v.to_string(), "{n2}");
        assert!(format!("{v:?}").contains("⊣"));
    }
}
