/// Protocol-level counters kept by a [`CliffEdgeNode`](crate::CliffEdgeNode).
///
/// These count *logical* protocol steps (proposals, rejections, rounds),
/// complementing the transport-level message/byte accounting done by the
/// runtime. The churn experiments (E6) report them directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Consensus instances this node started (Algorithm 1, line 13).
    pub proposals: u64,
    /// Instances that completed their final round with an all-accept
    /// vector, producing a decision (line 35).
    pub decided_instances: u64,
    /// Instances that completed but failed (a `⊥` or a reject in the
    /// final vector; line 37).
    pub failed_instances: u64,
    /// Instances abandoned early by the fast-abort optimization.
    pub aborted_instances: u64,
    /// Rejections this node issued (line 27).
    pub rejects_sent: u64,
    /// Messages ignored because their view was already rejected (line 18
    /// guard).
    pub ignored_messages: u64,
    /// Crash notifications processed (line 5).
    pub crashes_detected: u64,
    /// Round-advancing multicasts (line 40), including closing floods.
    pub round_messages: u64,
    /// Highest round reached in any instance.
    pub max_round: u32,
    /// Distinct views for which instance state was created.
    pub views_seen: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = ProtocolStats::default();
        assert_eq!(s.proposals, 0);
        assert_eq!(s.max_round, 0);
        assert_eq!(
            s,
            ProtocolStats {
                ..Default::default()
            }
        );
    }
}
