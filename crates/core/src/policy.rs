use std::fmt::Debug;

use precipice_graph::NodeId;

use crate::{View, WireSize};

/// Application hook supplying decision values: what each border node
/// *proposes* for a view (the paper's `selectValueForView`, line 14) and
/// how a final value is *picked* from the accepted proposals (the paper's
/// `deterministicPick`, line 35).
///
/// # Determinism contract
///
/// `pick` **must** be a deterministic function of the value sequence it is
/// given. Uniform Border Agreement (CD5) rests on it: Lemma 3 guarantees
/// all completing participants hold identical opinion vectors, so they
/// call `pick` with identical inputs — identical outputs then give
/// identical decisions. `propose` may depend on local state but is called
/// at most once per (node, view) pair (Lemma 2).
pub trait DecisionPolicy {
    /// The decision value agreed upon alongside the region (a repair
    /// plan, an elected coordinator, …).
    type Value: Clone + Eq + Ord + Debug + WireSize;

    /// The value this node proposes for `view` when starting a consensus
    /// instance for it.
    fn propose(&self, me: NodeId, view: &View) -> Self::Value;

    /// Deterministically selects the decision from the accepted values,
    /// given in border-node order (never empty).
    fn pick(&self, values: &[Self::Value]) -> Self::Value;
}

/// Policy electing a coordinator among the border: each node proposes its
/// own id, the smallest proposed id wins.
///
/// This is the "preference-based leader election" reading of the
/// protocol's decision (paper §4): the agreed value designates which
/// border node should drive the recovery action.
///
/// # Example
///
/// ```
/// use precipice_core::{DecisionPolicy, NodeIdValuePolicy};
/// use precipice_graph::NodeId;
///
/// let policy = NodeIdValuePolicy;
/// assert_eq!(policy.pick(&[NodeId(4), NodeId(2), NodeId(9)]), NodeId(2));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeIdValuePolicy;

impl DecisionPolicy for NodeIdValuePolicy {
    type Value = NodeId;

    fn propose(&self, me: NodeId, _view: &View) -> NodeId {
        me
    }

    fn pick(&self, values: &[NodeId]) -> NodeId {
        *values.iter().min().expect("pick called with no values")
    }
}

/// Policy proposing a fixed value everywhere — useful when the decision
/// *is* the view and the value channel is irrelevant (and for tests).
///
/// # Example
///
/// ```
/// use precipice_core::{ConstPolicy, DecisionPolicy};
///
/// let policy = ConstPolicy(1u32);
/// assert_eq!(policy.pick(&[1, 1, 1]), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstPolicy<D>(pub D);

impl<D: Clone + Eq + Ord + Debug + WireSize> DecisionPolicy for ConstPolicy<D> {
    type Value = D;

    fn propose(&self, _me: NodeId, _view: &View) -> D {
        self.0.clone()
    }

    fn pick(&self, values: &[D]) -> D {
        values.first().expect("pick called with no values").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use precipice_graph::{Graph, Region};

    #[test]
    fn node_id_policy_proposes_self_and_picks_min() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let view = View::new(&g, Region::from_iter([NodeId(1)]));
        assert_eq!(NodeIdValuePolicy.propose(NodeId(2), &view), NodeId(2));
        assert_eq!(NodeIdValuePolicy.pick(&[NodeId(2), NodeId(0)]), NodeId(0));
    }

    #[test]
    fn const_policy_ignores_inputs() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let view = View::new(&g, Region::from_iter([NodeId(1)]));
        let p = ConstPolicy("plan".to_string());
        assert_eq!(p.propose(NodeId(0), &view), "plan");
        assert_eq!(p.pick(&["plan".into(), "plan".into()]), "plan");
    }

    #[test]
    #[should_panic(expected = "no values")]
    fn pick_requires_values() {
        let _ = NodeIdValuePolicy.pick(&[]);
    }
}
