//! Minimal JSON values for the serve wire protocol.
//!
//! `precipice serve` speaks line-delimited JSON on stdin/stdout
//! (maelstrom-style). The protocol needs exactly four things — parse a
//! command line, read scalar fields, build a response, serialize it on
//! one line — so this module hand-rolls a small recursive-descent parser
//! and printer instead of pulling in a serialization framework.
//!
//! Objects preserve insertion order, so serialized responses are
//! byte-deterministic: the same command sequence always produces the
//! same output lines (CI byte-diffs rely on this).
//!
//! # Example
//!
//! ```
//! use precipice_core::json::Json;
//!
//! let cmd = Json::parse(r#"{"cmd":"crash","node":5}"#).unwrap();
//! assert_eq!(cmd.get("cmd").and_then(Json::as_str), Some("crash"));
//! assert_eq!(cmd.get("node").and_then(Json::as_u64), Some(5));
//!
//! let reply = Json::obj([("ok", Json::Bool(true)), ("killed", Json::from(5u64))]);
//! assert_eq!(reply.to_line(), r#"{"ok":true,"killed":5}"#);
//! ```

use std::fmt;

/// A JSON value.
///
/// Numbers are kept as `f64` (like JavaScript); [`Json::as_u64`] checks
/// that the value round-trips to an integer before handing it out, which
/// covers every count and node id the serve protocol carries (node ids
/// are well under 2⁵³).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, keys not deduplicated.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset and what went wrong there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// Human-readable description.
    pub what: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up `key` in an object (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON value, requiring the input to be fully consumed
    /// (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }

    /// Serializes to a single compact line (no spaces, no newline).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

fn write_num(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> JsonError {
        JsonError {
            at: self.pos,
            what: what.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&first) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let second = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by
                    // construction: we were handed a &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty rest");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits, advancing past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-7", "12345"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_line(), text, "round trip {text}");
        }
        assert_eq!(Json::parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(Json::parse("1e3").unwrap().as_u64(), Some(1000));
    }

    #[test]
    fn objects_preserve_order_and_nest() {
        let line =
            r#"{"cmd":"open","topology":"torus:8","shards":2,"deep":{"a":[1,2,{"b":null}]}}"#;
        let v = Json::parse(line).unwrap();
        assert_eq!(v.to_line(), line);
        assert_eq!(v.get("shards").and_then(Json::as_u64), Some(2));
        assert_eq!(
            v.get("deep")
                .and_then(|d| d.get("a"))
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn whitespace_and_escapes() {
        let v = Json::parse(" { \"a\\n\\\"b\" : [ 1 , true ] } ").unwrap();
        assert_eq!(v.to_line(), r#"{"a\n\"b":[1,true]}"#);
        let uni = Json::parse(r#""é😀""#).unwrap();
        assert_eq!(uni.as_str(), Some("é😀"));
        assert_eq!(Json::parse(&uni.to_line()).unwrap(), uni);
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse(r#"{"a":1} x"#).is_err());
        assert!(Json::parse("\"\u{01}\"").is_err());
        let e = Json::parse("[1, @]").unwrap_err();
        assert_eq!(e.at, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn integer_bounds() {
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(0.0).as_u64(), Some(0));
        assert_eq!(Json::Null.as_u64(), None);
    }
}
