//! The **cliff-edge consensus** protocol: convergent detection of crashed
//! regions, after
//!
//! > Taïani, Porter, Coulson, Raynal. *Cliff-Edge Consensus: Agreeing on
//! > the Precipice.* PaCT 2013, LNCS 7979, pp. 51–64.
//!
//! Nodes bordering a crashed region of an arbitrarily large network agree
//! on the **extent** of the region and on a common **decision value**
//! (e.g. a repair plan), touching only nodes in the region's vicinity.
//! The protocol is a superposition of flooding uniform consensus
//! instances — one per *proposed view*, indexed by the view itself — plus
//! a ranking-based arbitration that rejects lower-ranked conflicting
//! views (paper Algorithm 1).
//!
//! # Sans-io design
//!
//! [`CliffEdgeNode`] is a pure state machine: feed it an [`Event`]
//! (initialization, a failure-detector notification, or a delivered
//! [`Message`]) and it returns the [`Action`]s to perform (subscribe to
//! crashes, multicast a message, decide). The same core runs unchanged on
//! the deterministic simulator (`precipice-runtime`) and on live threads
//! (`precipice-net`).
//!
//! # Example
//!
//! A three-node path `p0 - p1 - p2` where the middle node crashes: both
//! survivors border the crashed region `{p1}` and must agree on it.
//!
//! ```
//! use precipice_core::{Action, CliffEdgeNode, Event, NodeIdValuePolicy, ProtocolConfig};
//! use precipice_graph::{Graph, NodeId};
//! use std::sync::Arc;
//!
//! let g = Arc::new(Graph::from_edges(3, [(0, 1), (1, 2)]));
//! let mut p0 = CliffEdgeNode::new(NodeId(0), g.clone(), NodeIdValuePolicy, ProtocolConfig::default());
//! let actions = p0.handle(Event::Init);
//! // On init the node subscribes to the crashes of its neighbours.
//! assert!(matches!(&actions[0], Action::Monitor(targets) if targets == &vec![NodeId(1)]));
//!
//! // The failure detector reports p1's crash: p0 proposes the view {p1}
//! // to its border {p0, p2} by multicasting a round-1 message.
//! let actions = p0.handle(Event::Crash(NodeId(1)));
//! assert!(actions.iter().any(|a| matches!(a, Action::Multicast { .. })));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod config;
mod instance;
pub mod json;
mod message;
mod node;
mod policy;
mod stats;
mod view;
mod wire;

pub use config::ProtocolConfig;
pub use message::{Message, Opinion, OpinionVector};
pub use node::{Action, CliffEdgeNode, Event};
pub use policy::{ConstPolicy, DecisionPolicy, NodeIdValuePolicy};
pub use stats::ProtocolStats;
pub use view::View;
pub use wire::WireSize;
