use std::collections::BTreeSet;
use std::sync::Arc;

use precipice_graph::{NodeId, NodeSet};

use crate::message::{Message, Opinion, OpinionVector};
use crate::View;

/// Book-keeping for one superposed consensus instance, indexed by its
/// proposed view (the `opinions[V][·][·]` and `waiting[V][·]` state of
/// Algorithm 1, lines 20–22).
///
/// Per-participant membership (who are we waiting for, who rejected, who
/// has a non-`⊥` entry) is tracked in sorted sets sized by the *border*,
/// never by node-id magnitude: a border of `b` nodes costs O(`b`) per
/// instance and O(log `b`) per guard probe, even when the ids involved
/// sit near the top of a multi-million-node id space. (A dense bitset
/// here would be zeroed and scanned out to the highest border id — an
/// O(`n`/64) tax on every delivery that dominated large lazy runs.)
///
/// One clarification over the literal pseudocode:
/// nodes known to have **rejected** the view are excluded from the wait
/// set of *every* round, not just the round their rejection message was
/// tagged with — a rejecter sends nothing further for this view, and the
/// Progress proof (case C1) relies on its rejection unblocking proposers
/// in whatever round they currently are.
#[derive(Debug, Clone)]
pub(crate) struct Instance<D> {
    view: View,
    /// `opinions[V][r][·]`, index `r − 1`; absent key = `⊥`. Each round
    /// vector is `Arc`-shared with the messages that forward it
    /// (copy-on-write: a merge after a forward clones once).
    opinions: Vec<Arc<OpinionVector<D>>>,
    /// Border nodes with a non-`⊥` entry in `opinions[r]`, index `r − 1`
    /// (mirror of the vector's key set, for O(1) completeness checks).
    answered: Vec<BTreeSet<NodeId>>,
    /// `waiting[V][r]`, index `r − 1`: border nodes whose round-`r`
    /// message has not arrived.
    waiting: Vec<BTreeSet<NodeId>>,
    /// Border nodes known (from any received vector) to have rejected.
    rejectors: BTreeSet<NodeId>,
}

impl<D: Clone> Instance<D> {
    /// Initializes the per-round state for `view`
    /// (rounds `1 ..= view.total_rounds()`).
    pub fn new(view: View) -> Self {
        let rounds = view.total_rounds() as usize;
        let waiting: BTreeSet<NodeId> = view.border().iter().collect();
        Instance {
            opinions: (0..rounds)
                .map(|_| Arc::new(OpinionVector::new()))
                .collect(),
            answered: vec![BTreeSet::new(); rounds],
            waiting: vec![waiting; rounds],
            rejectors: BTreeSet::new(),
            view,
        }
    }

    /// The view this instance decides on.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Consumes the instance, yielding its view without cloning.
    pub fn into_view(self) -> View {
        self.view
    }

    /// Known rejectors of this view.
    pub fn rejectors(&self) -> &BTreeSet<NodeId> {
        &self.rejectors
    }

    /// Merges a received message (Algorithm 1, lines 23–25): fills `⊥`
    /// entries of the message's round slot, removes the sender from that
    /// round's wait set, and registers any rejectors carried by the
    /// vector.
    pub fn merge(&mut self, from: NodeId, msg: &Message<D>) {
        debug_assert_eq!(
            &msg.view,
            self.view.region(),
            "message routed to wrong instance"
        );
        debug_assert_eq!(
            &msg.border,
            self.view.border(),
            "border mismatch for view {}",
            self.view
        );
        let slot = (msg.round as usize).saturating_sub(1);
        debug_assert!(
            slot < self.opinions.len(),
            "round {} out of range",
            msg.round
        );
        let Some(vector) = self.opinions.get_mut(slot) else {
            return;
        };
        let vector = Arc::make_mut(vector);
        let answered = &mut self.answered[slot];
        let border = self.view.border();
        for (&pk, op) in msg.opinions.iter() {
            vector.entry(pk).or_insert_with(|| {
                if border.contains(pk) {
                    answered.insert(pk);
                }
                op.clone()
            });
        }
        if let Some(w) = self.waiting.get_mut(slot) {
            w.remove(&from);
        }
        // Only border members can reject (they are the only recipients),
        // and only they matter to the round guards (`waiting ⊆ border`).
        // Filtering also keeps a malformed id in a received vector from
        // bloating the rejecter set beyond the border.
        self.rejectors
            .extend(msg.rejectors().filter(|r| border.contains(*r)));
    }

    /// `true` if round `round` can complete: every border node has either
    /// sent its round-`round` message, is a known rejecter, or is known
    /// crashed (the `waiting[Vp][r] \ locallyCrashed = ∅` guard of line
    /// 32, extended with rejectors per the struct docs).
    ///
    /// O(|waiting|) probes — the wait set only ever shrinks, so this is
    /// border-sized at worst and usually near-empty by the time it fires.
    pub fn round_complete(&self, round: u32, locally_crashed: &NodeSet) -> bool {
        let Some(w) = self.waiting.get((round as usize) - 1) else {
            return false;
        };
        w.iter()
            .all(|&p| locally_crashed.contains(p) || self.rejectors.contains(&p))
    }

    /// `true` if the round-`round` vector has an entry (no `⊥`) for every
    /// border node — the footnote-6 early-termination criterion. O(1) via
    /// the `answered` cardinality.
    pub fn vector_complete(&self, round: u32) -> bool {
        self.answered
            .get((round as usize) - 1)
            .is_some_and(|a| a.len() == self.view.border().len())
    }

    /// The round-`round` opinion vector.
    pub fn vector(&self, round: u32) -> &OpinionVector<D> {
        &self.opinions[(round as usize) - 1]
    }

    /// The round-`round` opinion vector, `Arc`-shared for forwarding in
    /// the next round's multicast without a deep copy.
    pub fn vector_arc(&self, round: u32) -> Arc<OpinionVector<D>> {
        Arc::clone(&self.opinions[(round as usize) - 1])
    }

    /// If the round-`round` vector is all-accept over the full border
    /// (line 34), returns the accepted values in border order.
    pub fn all_accept_values(&self, round: u32) -> Option<Vec<D>> {
        if round == 0 || round as usize > self.opinions.len() {
            return None;
        }
        let vector = self.vector(round);
        let mut values = Vec::with_capacity(self.view.border().len());
        for p in self.view.border().iter() {
            match vector.get(&p) {
                Some(Opinion::Accept(v)) => values.push(v.clone()),
                _ => return None,
            }
        }
        Some(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{initial_accept_vector, rejection_vector};
    use precipice_graph::{Graph, Region};

    fn star_view() -> View {
        // Hub 0 with leaves 1..=3; region {0} has border {1,2,3}.
        let g = precipice_graph::star(4);
        View::new(&g, Region::from_iter([NodeId(0)]))
    }

    fn msg(round: u32, view: &View, op: std::sync::Arc<OpinionVector<u32>>) -> Message<u32> {
        Message {
            round,
            view: view.region().clone(),
            border: view.border().clone(),
            opinions: op,
        }
    }

    #[test]
    fn new_instance_waits_for_everyone() {
        let inst: Instance<u32> = Instance::new(star_view());
        assert_eq!(inst.view().total_rounds(), 2);
        assert!(!inst.round_complete(1, &NodeSet::new()));
        assert!(!inst.vector_complete(1));
        assert!(inst.all_accept_values(1).is_none());
    }

    #[test]
    fn merge_fills_bottoms_only() {
        let view = star_view();
        let mut inst: Instance<u32> = Instance::new(view.clone());
        inst.merge(
            NodeId(1),
            &msg(1, &view, initial_accept_vector(NodeId(1), 11)),
        );
        // A later vector claiming a different value for n1 must not
        // overwrite (line 24 only updates ⊥ entries).
        let mut conflicting = (*initial_accept_vector(NodeId(1), 99)).clone();
        conflicting.insert(NodeId(2), Opinion::Accept(22));
        inst.merge(NodeId(2), &msg(1, &view, std::sync::Arc::new(conflicting)));
        let v = inst.vector(1);
        assert_eq!(v[&NodeId(1)], Opinion::Accept(11));
        assert_eq!(v[&NodeId(2)], Opinion::Accept(22));
    }

    #[test]
    fn round_completes_when_all_heard() {
        let view = star_view();
        let mut inst: Instance<u32> = Instance::new(view.clone());
        for n in [1u32, 2, 3] {
            inst.merge(
                NodeId(n),
                &msg(1, &view, initial_accept_vector(NodeId(n), n)),
            );
        }
        assert!(inst.round_complete(1, &NodeSet::new()));
        assert!(inst.vector_complete(1));
        assert_eq!(inst.all_accept_values(1), Some(vec![1, 2, 3]));
        // Round 2 untouched.
        assert!(!inst.round_complete(2, &NodeSet::new()));
    }

    #[test]
    fn crashed_nodes_unblock_waiting() {
        let view = star_view();
        let mut inst: Instance<u32> = Instance::new(view.clone());
        inst.merge(
            NodeId(1),
            &msg(1, &view, initial_accept_vector(NodeId(1), 1)),
        );
        let crashed: NodeSet = [NodeId(2), NodeId(3)].into_iter().collect();
        assert!(inst.round_complete(1, &crashed));
        // But the all-accept check still fails: 2 and 3 are ⊥.
        assert!(inst.all_accept_values(1).is_none());
    }

    #[test]
    fn rejectors_unblock_every_round() {
        let view = star_view();
        let mut inst: Instance<u32> = Instance::new(view.clone());
        inst.merge(
            NodeId(1),
            &msg(1, &view, initial_accept_vector(NodeId(1), 1)),
        );
        inst.merge(
            NodeId(3),
            &msg(1, &view, initial_accept_vector(NodeId(3), 3)),
        );
        // n2 rejects (tagged round 1) — it must unblock round 2 as well.
        inst.merge(NodeId(2), &msg(1, &view, rejection_vector(NodeId(2))));
        assert!(inst.round_complete(1, &NodeSet::new()));
        assert_eq!(
            inst.rejectors().iter().copied().collect::<Vec<_>>(),
            vec![NodeId(2)]
        );
        // Round 2: only 1 and 3 need to speak.
        inst.merge(
            NodeId(1),
            &msg(2, &view, std::sync::Arc::new(inst.vector(1).clone())),
        );
        inst.merge(
            NodeId(3),
            &msg(2, &view, std::sync::Arc::new(inst.vector(1).clone())),
        );
        assert!(inst.round_complete(2, &NodeSet::new()));
        // Reject propagated into round 2 via the forwarded vectors.
        assert!(inst.all_accept_values(2).is_none());
    }

    #[test]
    fn reject_does_not_overwrite_prior_accept() {
        // FIFO scenario of Lemma 3: accept seen before reject keeps the
        // accept.
        let view = star_view();
        let mut inst: Instance<u32> = Instance::new(view.clone());
        inst.merge(
            NodeId(1),
            &msg(1, &view, initial_accept_vector(NodeId(1), 1)),
        );
        inst.merge(NodeId(1), &msg(1, &view, rejection_vector(NodeId(1))));
        assert_eq!(inst.vector(1)[&NodeId(1)], Opinion::Accept(1));
        // ... but the node is still recorded as a rejecter for waiting.
        assert!(inst.rejectors().contains(&NodeId(1)));
    }

    #[test]
    fn foreign_opinion_entries_do_not_complete_vectors() {
        // A vector carrying an entry for a non-border node must not count
        // toward the completeness cardinality.
        let view = star_view();
        let mut inst: Instance<u32> = Instance::new(view.clone());
        let mut op = OpinionVector::new();
        op.insert(NodeId(1), Opinion::Accept(1));
        op.insert(NodeId(2), Opinion::Accept(2));
        op.insert(NodeId(99), Opinion::Accept(99));
        inst.merge(NodeId(1), &msg(1, &view, std::sync::Arc::new(op)));
        assert!(!inst.vector_complete(1));
        inst.merge(
            NodeId(3),
            &msg(1, &view, initial_accept_vector(NodeId(3), 3)),
        );
        assert!(inst.vector_complete(1));
    }

    #[test]
    fn singleton_border_instance() {
        // Path 0-1: region {0} has border {1} only.
        let g = Graph::from_edges(2, [(0, 1)]);
        let view = View::new(&g, Region::from_iter([NodeId(0)]));
        assert_eq!(view.total_rounds(), 1);
        let mut inst: Instance<u32> = Instance::new(view.clone());
        inst.merge(
            NodeId(1),
            &msg(1, &view, initial_accept_vector(NodeId(1), 5)),
        );
        assert!(inst.round_complete(1, &NodeSet::new()));
        assert_eq!(inst.all_accept_values(1), Some(vec![5]));
    }
}
