use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use precipice_graph::{NodeId, NodeSet, Region, Topology};

use crate::instance::Instance;
use crate::message::{initial_accept_vector, rejection_vector, Message};
use crate::{DecisionPolicy, ProtocolConfig, ProtocolStats, View};

/// An input to the protocol state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<D> {
    /// Protocol start (the paper's `⟨init⟩`). Must be the first event.
    Init,
    /// The failure detector reports a monitored node crashed
    /// (`⟨crash | q⟩`).
    Crash(NodeId),
    /// A protocol message was delivered (`⟨mDeliver | p, [m]⟩`).
    Deliver {
        /// The sender.
        from: NodeId,
        /// The message.
        message: Message<D>,
    },
}

/// An output effect requested by the protocol state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<D> {
    /// Subscribe to crash notifications for these nodes
    /// (`⟨monitorCrash | S⟩`).
    Monitor(Vec<NodeId>),
    /// Send `message` to every recipient (the paper's best-effort
    /// `⟨multicast | R, [m]⟩`; recipients include the sender itself,
    /// whose copy loops back through the normal channel).
    Multicast {
        /// Destination nodes, in sorted order.
        recipients: Vec<NodeId>,
        /// The message to send to each.
        message: Message<D>,
    },
    /// The node decided: it agreed on `view` as a crashed region, with
    /// the common decision value `value` (`⟨decide | S, d⟩`). Emitted at
    /// most once per node.
    Decide {
        /// The agreed crashed region (with its border).
        view: View,
        /// The agreed decision value.
        value: D,
    },
}

/// The cliff-edge consensus state machine for one node (paper
/// Algorithm 1).
///
/// Drive it by feeding [`Event`]s to [`handle`](CliffEdgeNode::handle)
/// and executing the returned [`Action`]s. See the
/// [crate documentation](crate) for an example and
/// `precipice-runtime`/`precipice-net` for ready-made drivers.
///
/// `T` supplies on-demand topology queries (the paper's topology
/// service); `P` supplies application decision values.
pub struct CliffEdgeNode<T, P: DecisionPolicy> {
    me: NodeId,
    topology: T,
    policy: P,
    config: ProtocolConfig,
    /// `locallyCrashed`: crashes reported by the failure detector.
    locally_crashed: BTreeSet<NodeId>,
    /// Dense mirror of `locally_crashed` for the word-parallel round
    /// guards (kept in lock-step by `on_crash`).
    crashed_set: NodeSet,
    /// `maxView`: highest-ranked crashed region known (line 10).
    max_view: Option<View>,
    /// `candidateView`: pending proposal, consumed by line 13.
    candidate_view: Option<View>,
    /// `proposed`: the value proposed for the active instance; `None`
    /// when no instance is active (line 37 reset). Never cleared after a
    /// decision.
    proposed: Option<P::Value>,
    /// `Vp`: the last proposed view. Outlives instance failure and even
    /// the decision — the rejection guard (line 26) keeps comparing
    /// against it, which is what lets decided/stalled nodes fail
    /// lower-ranked latecomers (needed for Progress, Theorem 4 case C2).
    current_view: Option<View>,
    /// `r`: current round of the active instance.
    round: u32,
    /// `received` ∪ the `opinions`/`waiting` state, keyed by view.
    received: BTreeMap<Region, Instance<P::Value>>,
    /// Views this node rejected; their messages are ignored (line 18).
    rejected: BTreeSet<Region>,
    decided: Option<(View, P::Value)>,
    stats: ProtocolStats,
}

impl<T, P> fmt::Debug for CliffEdgeNode<T, P>
where
    P: DecisionPolicy,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CliffEdgeNode")
            .field("me", &self.me)
            .field(
                "decided",
                &self.decided.as_ref().map(|(v, d)| (v.region().clone(), d)),
            )
            .field(
                "active",
                &(self.proposed.is_some() && self.decided.is_none()),
            )
            .field(
                "current_view",
                &self.current_view.as_ref().map(View::region),
            )
            .field("round", &self.round)
            .field("locally_crashed", &self.locally_crashed)
            .finish()
    }
}

impl<T, P> CliffEdgeNode<T, P>
where
    T: Topology,
    P: DecisionPolicy,
{
    /// Creates the state machine for node `me`.
    pub fn new(me: NodeId, topology: T, policy: P, config: ProtocolConfig) -> Self {
        CliffEdgeNode {
            me,
            topology,
            policy,
            config,
            locally_crashed: BTreeSet::new(),
            crashed_set: NodeSet::new(),
            max_view: None,
            candidate_view: None,
            proposed: None,
            current_view: None,
            round: 0,
            received: BTreeMap::new(),
            rejected: BTreeSet::new(),
            decided: None,
            stats: ProtocolStats::default(),
        }
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The decision, if this node has decided.
    pub fn decision(&self) -> Option<(&View, &P::Value)> {
        self.decided.as_ref().map(|(v, d)| (v, d))
    }

    /// `true` once the node has decided.
    pub fn has_decided(&self) -> bool {
        self.decided.is_some()
    }

    /// `true` while a consensus instance is active (proposed and neither
    /// completed nor failed).
    pub fn is_active(&self) -> bool {
        self.proposed.is_some() && self.decided.is_none()
    }

    /// The last view this node proposed, if any.
    pub fn current_proposal(&self) -> Option<&View> {
        self.current_view.as_ref()
    }

    /// Crashes reported to this node so far.
    pub fn locally_crashed(&self) -> &BTreeSet<NodeId> {
        &self.locally_crashed
    }

    /// Views this node has rejected.
    pub fn rejected_views(&self) -> impl Iterator<Item = &Region> + '_ {
        self.rejected.iter()
    }

    /// Protocol counters.
    pub fn stats(&self) -> &ProtocolStats {
        &self.stats
    }

    /// The protocol configuration in force.
    pub fn config(&self) -> ProtocolConfig {
        self.config
    }

    /// Feeds one event and returns the actions to execute, in order.
    ///
    /// This runs the triggering handler and then re-evaluates the
    /// algorithm's state guards (lines 12, 26, 32) to a fixpoint, since
    /// several `upon` clauses of Algorithm 1 are pure state predicates.
    pub fn handle(&mut self, event: Event<P::Value>) -> Vec<Action<P::Value>> {
        let mut actions = Vec::new();
        match event {
            Event::Init => self.on_init(&mut actions),
            Event::Crash(q) => self.on_crash(q, &mut actions),
            Event::Deliver { from, message } => self.on_deliver(from, message),
        }
        self.run_guards(&mut actions);
        actions
    }

    /// Line 4: subscribe to the crashes of our direct neighbours.
    fn on_init(&mut self, actions: &mut Vec<Action<P::Value>>) {
        let border = self.topology.neighbors_of(self.me);
        if !border.is_empty() {
            actions.push(Action::Monitor(border));
        }
    }

    /// Lines 5–11: extend `locallyCrashed`, monitor the crashed node's
    /// own border (view construction floods outward through the crashed
    /// region), and refresh `maxView`/`candidateView`.
    fn on_crash(&mut self, q: NodeId, actions: &mut Vec<Action<P::Value>>) {
        debug_assert!(
            !self.locally_crashed.contains(&q),
            "perfect FD must notify at most once (got {q} twice)"
        );
        self.stats.crashes_detected += 1;
        self.locally_crashed.insert(q);
        self.crashed_set.insert(q);

        // Line 7: monitorCrash(border(q) \ locallyCrashed). We also drop
        // ourselves: self-monitoring can never fire.
        let targets: Vec<NodeId> = self
            .topology
            .neighbors_of(q)
            .into_iter()
            .filter(|n| *n != self.me && !self.locally_crashed.contains(n))
            .collect();
        if !targets.is_empty() {
            actions.push(Action::Monitor(targets));
        }

        // Lines 8–11. The sorted mirror of `crashed_set` drives the
        // component query so its cost tracks |locallyCrashed|, not the
        // word extent of the highest crashed id.
        let components = self.topology.components_of(&self.locally_crashed);
        let best = components
            .into_iter()
            .map(|region| View::new(&self.topology, region))
            .max_by(|a, b| a.rank_cmp(b))
            .expect("locally_crashed is non-empty");
        let grew = match &self.max_view {
            None => true,
            Some(mv) => best.rank_cmp(mv) == Ordering::Greater,
        };
        if grew {
            self.max_view = Some(best.clone());
            self.candidate_view = Some(best);
        }
    }

    /// Lines 18–25: route the message to its (possibly new) instance.
    fn on_deliver(&mut self, from: NodeId, message: Message<P::Value>) {
        if self.rejected.contains(&message.view) {
            self.stats.ignored_messages += 1;
            return;
        }
        // One map traversal per delivery; the entry-key clone is a plain
        // `Arc` refcount bump (`Region` is `Arc`-backed).
        let stats = &mut self.stats;
        let instance = self
            .received
            .entry(message.view.clone())
            .or_insert_with(|| {
                stats.views_seen += 1;
                Instance::new(View::from_parts(
                    message.view.clone(),
                    message.border.clone(),
                ))
            });
        instance.merge(from, &message);
    }

    /// Re-evaluates the state guards of Algorithm 1 until none fires.
    ///
    /// Every firing strictly advances monotone state (views move from
    /// `received` to `rejected`; proposals are rank-increasing; rounds
    /// advance; at most one fast abort per instance), so the loop
    /// terminates.
    fn run_guards(&mut self, actions: &mut Vec<Action<P::Value>>) {
        loop {
            // Guard line 26: some received view ranks strictly below our
            // (last) proposal — reject it. Lowest-ranked first, for
            // determinism. (Skipped entirely by the no-arbitration
            // ablation.)
            if let Some(vp) = self
                .current_view
                .as_ref()
                .filter(|_| self.config.arbitration)
            {
                // The planted `invert_arbitration` bug (test-only, for
                // the schedule explorer) rejects views ranked *above*
                // the proposal instead of below.
                let doomed = if self.config.invert_arbitration {
                    Ordering::Greater
                } else {
                    Ordering::Less
                };
                let target = self
                    .received
                    .values()
                    .filter(|inst| inst.view().rank_cmp(vp) == doomed)
                    .min_by(|a, b| a.view().rank_cmp(b.view()))
                    .map(|inst| inst.view().region().clone());
                if let Some(low) = target {
                    let instance = self
                        .received
                        .remove(&low)
                        .expect("target came from received");
                    self.do_reject(instance.into_view(), actions);
                    continue;
                }
            }

            // Fast-abort optimization: a known rejecter dooms the active
            // instance; skip the remaining rounds.
            if self.config.fast_abort_on_reject && self.is_active() {
                let doomed = self
                    .active_instance()
                    .is_some_and(|inst| !inst.rejectors().is_empty());
                if doomed {
                    self.proposed = None;
                    self.stats.aborted_instances += 1;
                    continue;
                }
            }

            // Guard line 12: no active instance and a candidate is
            // pending — propose it.
            if self.proposed.is_none() && self.candidate_view.is_some() {
                self.do_propose(actions);
                continue;
            }

            // Guard line 32: the active instance completed its current
            // round.
            if self.is_active() {
                let complete = self
                    .active_instance()
                    .is_some_and(|inst| inst.round_complete(self.round, &self.crashed_set));
                if complete {
                    self.complete_round(actions);
                    continue;
                }
            }

            break;
        }
    }

    fn active_instance(&self) -> Option<&Instance<P::Value>> {
        let vp = self.current_view.as_ref()?;
        self.received.get(vp.region())
    }

    /// Lines 26–31: reject `low` (already removed from `received`),
    /// notify its border, and ignore it from now on.
    fn do_reject(&mut self, low: View, actions: &mut Vec<Action<P::Value>>) {
        debug_assert!(
            self.config.invert_arbitration
                || self
                    .current_view
                    .as_ref()
                    .is_some_and(|vp| low.rank_cmp(vp) == Ordering::Less),
            "only strictly lower-ranked views are rejected"
        );
        self.stats.rejects_sent += 1;
        let (region, border) = low.into_parts();
        let recipients = border.iter().collect();
        self.rejected.insert(region.clone());
        let message = Message {
            round: 1,
            view: region,
            border,
            opinions: rejection_vector(self.me),
        };
        actions.push(Action::Multicast {
            recipients,
            message,
        });
    }

    /// Lines 12–17: start the consensus instance for the candidate view.
    fn do_propose(&mut self, actions: &mut Vec<Action<P::Value>>) {
        let view = self
            .candidate_view
            .take()
            .expect("guard checked candidate_view");
        // Lemma 2 invariants: proposals are strictly rank-monotonic and a
        // rejected view is never proposed.
        debug_assert!(
            self.current_view
                .as_ref()
                .is_none_or(|old| view.rank_cmp(old) == Ordering::Greater),
            "{}: proposal {} does not outrank previous {:?}",
            self.me,
            view,
            self.current_view
        );
        debug_assert!(
            self.config.invert_arbitration || !self.rejected.contains(view.region()),
            "{}: proposing previously rejected view {}",
            self.me,
            view
        );
        debug_assert!(
            view.border().contains(self.me),
            "{}: proposing a view we do not border: {}",
            self.me,
            view
        );

        let value = self.policy.propose(self.me, &view);
        self.proposed = Some(value.clone());
        self.current_view = Some(view.clone());
        self.round = 1;
        self.stats.proposals += 1;
        self.stats.max_round = self.stats.max_round.max(1);
        let message = Message {
            round: 1,
            view: view.region().clone(),
            border: view.border().clone(),
            opinions: initial_accept_vector(self.me, value),
        };
        actions.push(Action::Multicast {
            recipients: view.border().iter().collect(),
            message,
        });
    }

    /// Lines 32–40: the current round of the active instance completed.
    fn complete_round(&mut self, actions: &mut Vec<Action<P::Value>>) {
        let vp = self
            .current_view
            .clone()
            .expect("active instance has a view");
        let total = vp.total_rounds();
        let r = self.round;
        let instance = self
            .received
            .get(vp.region())
            .expect("guard checked membership");

        if r >= total {
            self.finalize(&vp, r, actions);
            return;
        }

        if self.config.early_termination && r >= 2 && instance.vector_complete(r) {
            // Footnote-6 early termination: everyone we still wait for is
            // represented in a ⊥-free vector. Flood one closing round so
            // laggards inherit the complete vector, then finalize.
            let message = Message {
                round: r + 1,
                view: vp.region().clone(),
                border: vp.border().clone(),
                opinions: instance.vector_arc(r),
            };
            self.stats.round_messages += 1;
            actions.push(Action::Multicast {
                recipients: vp.border().iter().collect(),
                message,
            });
            self.finalize(&vp, r, actions);
            return;
        }

        // Line 39–40: next round, forwarding the vector of the round that
        // just completed.
        self.round = r + 1;
        self.stats.max_round = self.stats.max_round.max(self.round);
        self.stats.round_messages += 1;
        let message = Message {
            round: r + 1,
            view: vp.region().clone(),
            border: vp.border().clone(),
            opinions: instance.vector_arc(r),
        };
        actions.push(Action::Multicast {
            recipients: vp.border().iter().collect(),
            message,
        });
    }

    /// Lines 33–37: evaluate the completed instance.
    fn finalize(&mut self, vp: &View, round: u32, actions: &mut Vec<Action<P::Value>>) {
        let instance = self.received.get(vp.region()).expect("instance exists");
        match instance.all_accept_values(round) {
            Some(values) => {
                let value = self.policy.pick(&values);
                debug_assert!(self.decided.is_none(), "{}: second decision", self.me);
                self.decided = Some((vp.clone(), value.clone()));
                self.stats.decided_instances += 1;
                actions.push(Action::Decide {
                    view: vp.clone(),
                    value,
                });
            }
            None => {
                // Line 37: the attempt failed; proposed resets so the
                // next candidate (if any) starts a new instance.
                self.proposed = None;
                self.stats.failed_instances += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Opinion;
    use crate::NodeIdValuePolicy;
    use precipice_graph::Graph;
    use std::collections::VecDeque;
    use std::sync::Arc;

    type Node = CliffEdgeNode<Arc<Graph>, NodeIdValuePolicy>;

    /// Minimal deterministic synchronous harness: a global FIFO queue
    /// (which preserves per-channel FIFO), staged crash injection, and
    /// recording of decisions/monitors. The full-featured version lives
    /// in `precipice-runtime`; this one keeps core tests dependency-free.
    ///
    /// Crash visibility is two-phase to model detection latency: a node
    /// listed as non-live (or killed by [`notify_one`](Net::notify_one))
    /// is *crashed but suppressed* — only once [`release`](Net::release)d
    /// does the failure detector start telling subscribers (current ones
    /// at once, later ones on subscription, exactly once each).
    struct Net {
        nodes: BTreeMap<NodeId, Node>,
        queue: VecDeque<(NodeId, NodeId, Message<NodeId>)>,
        crashed: BTreeSet<NodeId>,
        /// Crashes visible to the failure detector.
        released: BTreeSet<NodeId>,
        monitors: BTreeMap<NodeId, BTreeSet<NodeId>>,
        /// (observer, target) pairs already notified — exactly-once.
        notified: BTreeSet<(NodeId, NodeId)>,
        decisions: BTreeMap<NodeId, (View, NodeId)>,
    }

    impl Net {
        fn new(graph: &Arc<Graph>, live: impl IntoIterator<Item = u32>) -> Self {
            let mut net = Net {
                nodes: BTreeMap::new(),
                queue: VecDeque::new(),
                crashed: BTreeSet::new(),
                released: BTreeSet::new(),
                monitors: BTreeMap::new(),
                notified: BTreeSet::new(),
                decisions: BTreeMap::new(),
            };
            let mut dead: BTreeSet<u32> = (0..graph.len() as u32).collect();
            for id in live {
                dead.remove(&id);
                let id = NodeId(id);
                net.nodes.insert(
                    id,
                    Node::new(
                        id,
                        graph.clone(),
                        NodeIdValuePolicy,
                        ProtocolConfig::default(),
                    ),
                );
            }
            // Everyone not live is crashed from the start, suppressed.
            net.crashed.extend(dead.into_iter().map(NodeId));
            let ids: Vec<NodeId> = net.nodes.keys().copied().collect();
            for id in ids {
                net.dispatch(id, Event::Init);
            }
            net
        }

        fn with_config(mut self, config: ProtocolConfig) -> Self {
            for node in self.nodes.values_mut() {
                node.config = config;
            }
            self
        }

        fn dispatch(&mut self, id: NodeId, event: Event<NodeId>) {
            let mut pending: VecDeque<(NodeId, Event<NodeId>)> = VecDeque::from([(id, event)]);
            while let Some((id, event)) = pending.pop_front() {
                if !self.nodes.contains_key(&id) {
                    continue;
                }
                let actions = self.nodes.get_mut(&id).expect("checked").handle(event);
                for action in actions {
                    match action {
                        Action::Monitor(targets) => {
                            for t in targets {
                                self.monitors.entry(id).or_default().insert(t);
                                // Strong completeness: subscribing to a
                                // visibly-crashed target reports it right
                                // away.
                                if self.released.contains(&t) && self.notified.insert((id, t)) {
                                    pending.push_back((id, Event::Crash(t)));
                                }
                            }
                        }
                        Action::Multicast {
                            recipients,
                            message,
                        } => {
                            for to in recipients {
                                self.queue.push_back((id, to, message.clone()));
                            }
                        }
                        Action::Decide { view, value } => {
                            let prior = self.decisions.insert(id, (view, value));
                            assert!(prior.is_none(), "{id} decided twice");
                        }
                    }
                }
            }
        }

        /// Crashes `q` (if still alive) and makes the crash visible:
        /// notifies all current live subscribers, in id order; future
        /// subscribers are notified on subscription.
        fn release(&mut self, q: u32) {
            let q = NodeId(q);
            self.crashed.insert(q);
            self.released.insert(q);
            self.nodes.remove(&q);
            let observers: Vec<NodeId> = self
                .monitors
                .iter()
                .filter(|(obs, targets)| self.nodes.contains_key(obs) && targets.contains(&q))
                .map(|(&obs, _)| obs)
                .collect();
            for obs in observers {
                if self.notified.insert((obs, q)) {
                    self.dispatch(obs, Event::Crash(q));
                }
            }
        }

        /// Crashes `q` but notifies only `observer`, modelling detection
        /// skew; the crash stays suppressed for everyone else until
        /// [`release`](Net::release)d.
        fn notify_one(&mut self, observer: u32, q: u32) {
            let (observer, q) = (NodeId(observer), NodeId(q));
            assert!(self.monitors.get(&observer).is_some_and(|t| t.contains(&q)));
            self.crashed.insert(q);
            self.nodes.remove(&q);
            if self.notified.insert((observer, q)) {
                self.dispatch(observer, Event::Crash(q));
            }
        }

        fn pump(&mut self) {
            while let Some((from, to, message)) = self.queue.pop_front() {
                if !self.nodes.contains_key(&to) {
                    continue;
                }
                self.dispatch(to, Event::Deliver { from, message });
            }
        }

        fn decision_of(&self, id: u32) -> Option<&(View, NodeId)> {
            self.decisions.get(&NodeId(id))
        }

        fn total_rejects(&self) -> u64 {
            self.nodes.values().map(|n| n.stats().rejects_sent).sum()
        }
    }

    fn region(ids: &[u32]) -> Region {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn init_monitors_neighbors() {
        let g = Arc::new(Graph::from_edges(3, [(0, 1), (1, 2)]));
        let mut n = Node::new(NodeId(1), g, NodeIdValuePolicy, ProtocolConfig::default());
        let actions = n.handle(Event::Init);
        assert_eq!(actions, vec![Action::Monitor(vec![NodeId(0), NodeId(2)])]);
        assert!(!n.has_decided());
        assert!(!n.is_active());
    }

    #[test]
    fn crash_starts_instance_and_transitive_monitoring() {
        // 0 - 1 - 2 - 3 path; node 0 learns 1 crashed.
        let g = Arc::new(Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]));
        let mut n = Node::new(NodeId(0), g, NodeIdValuePolicy, ProtocolConfig::default());
        n.handle(Event::Init);
        let actions = n.handle(Event::Crash(NodeId(1)));
        // Must now monitor 1's other neighbour (2) and propose {1} to
        // border {0, 2}.
        assert!(actions.contains(&Action::Monitor(vec![NodeId(2)])));
        let Some(Action::Multicast {
            recipients,
            message,
        }) = actions
            .iter()
            .find(|a| matches!(a, Action::Multicast { .. }))
        else {
            panic!("expected a proposal multicast, got {actions:?}")
        };
        assert_eq!(recipients, &vec![NodeId(0), NodeId(2)]);
        assert_eq!(message.round, 1);
        assert_eq!(message.view, region(&[1]));
        assert_eq!(message.border, region(&[0, 2]));
        assert!(n.is_active());
        assert_eq!(n.stats().proposals, 1);
    }

    #[test]
    fn two_border_nodes_agree_on_path() {
        let g = Arc::new(Graph::from_edges(3, [(0, 1), (1, 2)]));
        let mut net = Net::new(&g, [0, 2]);
        net.release(1);
        net.pump();
        let d0 = net.decision_of(0).expect("n0 decides");
        let d2 = net.decision_of(2).expect("n2 decides");
        assert_eq!(d0, d2);
        assert_eq!(d0.0.region(), &region(&[1]));
        assert_eq!(d0.1, NodeId(0), "min border id elected");
    }

    #[test]
    fn singleton_border_decides_alone() {
        let g = Arc::new(Graph::from_edges(2, [(0, 1)]));
        let mut net = Net::new(&g, [0]);
        net.release(1);
        net.pump();
        let d = net.decision_of(0).expect("lone border node decides");
        assert_eq!(d.0.region(), &region(&[1]));
        assert_eq!(d.0.border().as_slice(), &[NodeId(0)]);
    }

    #[test]
    fn cascading_growth_converges_to_full_region() {
        // 0 - 1 - 2 - 3 - 4; nodes 1, 2, 3 crash one after another while
        // node 0 keeps retrying with growing views.
        let g = Arc::new(Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]));
        let mut net = Net::new(&g, [0, 4]);
        net.release(1);
        net.pump();
        assert!(
            net.decision_of(0).is_none(),
            "instance on {{1}} must fail: 2 is dead"
        );
        net.release(2);
        net.pump();
        assert!(
            net.decision_of(0).is_none(),
            "instance on {{1,2}} must fail: 3 is dead"
        );
        net.release(3);
        net.pump();
        let d0 = net.decision_of(0).expect("n0 decides eventually");
        let d4 = net.decision_of(4).expect("n4 decides eventually");
        assert_eq!(d0, d4);
        assert_eq!(d0.0.region(), &region(&[1, 2, 3]));
        assert_eq!(d0.0.border(), &region(&[0, 4]));
        assert_eq!(d0.1, NodeId(0));
    }

    /// Rejection scenario mirroring Fig. 1(b): a node championing a grown
    /// region rejects stale lower-ranked views — including its own former
    /// proposal — and everyone converges on the full region.
    #[test]
    fn stale_view_is_rejected_then_converges() {
        // Path 0 - 1 - 2 - 3; nodes 1 and 2 crash. Node 0 detects both
        // crashes quickly; node 3 lags behind.
        let g = Arc::new(Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]));
        let mut net = Net::new(&g, [0, 3]);

        // n0 alone learns of 1's crash -> proposes {1} to border {0,2}.
        net.notify_one(0, 1);
        net.pump();
        assert!(net.decision_of(0).is_none());
        assert_eq!(net.nodes[&NodeId(0)].stats().proposals, 1);

        // n0 learns of 2's crash: the {1} instance completes with a ⊥
        // for 2 and fails; n0 proposes {1,2} and — now championing a
        // higher view — rejects its own stale {1} instance.
        net.notify_one(0, 2);
        let s0 = net.nodes[&NodeId(0)].stats();
        assert_eq!(s0.proposals, 2);
        assert_eq!(s0.failed_instances, 1);
        assert_eq!(s0.rejects_sent, 1, "stale {{1}} must be rejected");
        net.pump();
        assert!(
            net.decision_of(0).is_none(),
            "n3 has not detected anything yet"
        );

        // n3's detector catches up (1 first, then 2): it proposes the
        // stale {2}, fails it, proposes {1,2}, and both decide.
        net.release(1);
        net.release(2);
        net.pump();

        let expected = region(&[1, 2]);
        for id in [0u32, 3] {
            let d = net
                .decision_of(id)
                .unwrap_or_else(|| panic!("n{id} must decide"));
            assert_eq!(d.0.region(), &expected, "n{id} decided {}", d.0);
            assert_eq!(d.0.border(), &region(&[0, 3]));
            assert_eq!(d.1, NodeId(0));
        }
        // n0 rejected {1} and n3's stale {2}; n3 rejected its own {2}
        // after re-proposing (exact splits depend on interleaving).
        assert!(
            net.total_rejects() >= 2,
            "got {} rejects",
            net.total_rejects()
        );
    }

    #[test]
    fn rejected_view_messages_are_ignored() {
        let g = Arc::new(Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]));
        let mut net = Net::new(&g, [0, 3]);
        net.notify_one(0, 1);
        net.pump();
        net.notify_one(0, 2);
        net.pump();
        assert_eq!(net.nodes[&NodeId(0)].stats().rejects_sent, 1);
        // n0 rejected {1}; feed it another {1} message — ignored.
        let stale = Message {
            round: 1,
            view: region(&[1]),
            border: region(&[0, 2]),
            opinions: initial_accept_vector(NodeId(2), NodeId(2)),
        };
        let before = net.nodes[&NodeId(0)].stats().ignored_messages;
        net.dispatch(
            NodeId(0),
            Event::Deliver {
                from: NodeId(2),
                message: stale,
            },
        );
        assert_eq!(net.nodes[&NodeId(0)].stats().ignored_messages, before + 1);
    }

    #[test]
    fn star_hub_crash_all_leaves_agree() {
        // Star with hub 0 and 5 leaves: border({0}) is all leaves, who
        // are *not* adjacent to each other — a 5-participant instance.
        let g = Arc::new(precipice_graph::star(6));
        let mut net = Net::new(&g, [1, 2, 3, 4, 5]);
        net.release(0);
        net.pump();
        let first = net.decision_of(1).expect("leaf 1 decides").clone();
        assert_eq!(first.0.region(), &region(&[0]));
        assert_eq!(first.1, NodeId(1));
        for leaf in 2..=5u32 {
            assert_eq!(net.decision_of(leaf), Some(&first), "leaf {leaf} agrees");
        }
        // |B| = 5 participants -> 4 rounds in the faithful protocol.
        assert_eq!(net.nodes[&NodeId(1)].stats().max_round, 4);
    }

    #[test]
    fn early_termination_reaches_same_decision_in_fewer_rounds() {
        let g = Arc::new(precipice_graph::star(6));
        let mut net = Net::new(&g, [1, 2, 3, 4, 5])
            .with_config(ProtocolConfig::faithful().with_early_termination(true));
        net.release(0);
        net.pump();
        let first = net.decision_of(1).expect("decides").clone();
        for leaf in 2..=5u32 {
            assert_eq!(net.decision_of(leaf), Some(&first));
        }
        assert!(
            net.nodes[&NodeId(1)].stats().max_round < 4,
            "early termination should cut rounds, got {}",
            net.nodes[&NodeId(1)].stats().max_round
        );
    }

    #[test]
    fn fast_abort_skips_doomed_rounds() {
        // Star: hub 0 crashes; leaf 1 proposes {0} (a 3-participant
        // instance, 2 rounds) and then receives a rejection from leaf 2.
        let g = Arc::new(precipice_graph::star(4));
        let build = |config: ProtocolConfig| {
            let mut n = Node::new(NodeId(1), g.clone(), NodeIdValuePolicy, config);
            n.handle(Event::Init);
            let actions = n.handle(Event::Crash(NodeId(0)));
            let Some(Action::Multicast { message, .. }) = actions
                .iter()
                .find(|a| matches!(a, Action::Multicast { .. }))
            else {
                panic!("no proposal")
            };
            let own = message.clone();
            // Self-delivery of the proposal.
            n.handle(Event::Deliver {
                from: NodeId(1),
                message: own,
            });
            assert!(n.is_active());
            n
        };
        let reject = Message {
            round: 1,
            view: region(&[0]),
            border: region(&[1, 2, 3]),
            opinions: rejection_vector(NodeId(2)),
        };

        // With fast abort: the instance dies on the spot.
        let mut fast = build(ProtocolConfig::faithful().with_fast_abort(true));
        fast.handle(Event::Deliver {
            from: NodeId(2),
            message: reject.clone(),
        });
        assert!(!fast.is_active());
        assert_eq!(fast.stats().aborted_instances, 1);
        assert_eq!(fast.stats().failed_instances, 0);

        // Faithful: the instance stays active, still waiting for leaf
        // 3's round-1 message (doomed, but run to completion).
        let mut faithful = build(ProtocolConfig::faithful());
        faithful.handle(Event::Deliver {
            from: NodeId(2),
            message: reject,
        });
        assert!(faithful.is_active());
        assert_eq!(faithful.stats().aborted_instances, 0);
    }

    #[test]
    fn decided_node_still_rejects_lower_views() {
        // Path 0-1-2 decides on {1}; then a disjoint region near node 0
        // appears: 0 must reject it (stale Vp guard), not join it.
        let g = Arc::new(Graph::from_edges(5, [(0, 1), (1, 2), (0, 3), (3, 4)]));
        let mut net = Net::new(&g, [0, 2, 4]);
        net.release(1);
        net.pump();
        assert!(net.decision_of(0).is_some());
        let rejects_before = net.nodes[&NodeId(0)].stats().rejects_sent;
        // Node 3 crashes; node 4 proposes {3} (border {0,4}); {3} ranks
        // below {1}? Same size 1; border({3}) = {0,4}, border({1}) =
        // {0,2}: same size 2 -> lex tiebreak {3} > {1}... so {3} outranks
        // {1} and is NOT rejected; 0 simply never joins (proposed is
        // still set after deciding).
        net.release(3);
        net.pump();
        assert_eq!(net.nodes[&NodeId(0)].stats().rejects_sent, rejects_before);
        assert!(
            net.decision_of(4).is_none(),
            "n4 stalls: weak progress (documented)"
        );
        // CD7 still holds: the cluster of {1} has a decided border node
        // (n0 decided), and {3} is adjacent to {1}'s border via node 0.
    }

    #[test]
    fn stats_track_views_and_rounds() {
        let g = Arc::new(Graph::from_edges(3, [(0, 1), (1, 2)]));
        let mut net = Net::new(&g, [0, 2]);
        net.release(1);
        net.pump();
        let s = net.nodes[&NodeId(0)].stats();
        assert_eq!(s.proposals, 1);
        assert_eq!(s.decided_instances, 1);
        assert_eq!(s.failed_instances, 0);
        assert_eq!(s.views_seen, 1);
        assert_eq!(s.crashes_detected, 1);
    }

    /// Lemma 2: the views a node proposes are strictly rank-monotonic,
    /// and a rejected view is never proposed. (Also enforced by debug
    /// assertions inside `do_propose`; this exercises them end-to-end.)
    #[test]
    fn lemma2_proposals_strictly_rank_monotonic() {
        let g = Arc::new(Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]));
        let mut n = Node::new(
            NodeId(0),
            g.clone(),
            NodeIdValuePolicy,
            ProtocolConfig::default(),
        );
        n.handle(Event::Init);
        // Ordered log of round-1 multicasts: proposals (self-accept) and
        // rejections (self-reject).
        #[derive(Debug, PartialEq)]
        enum Step {
            Proposed(View),
            Rejected(Region),
        }
        let mut steps: Vec<Step> = Vec::new();
        let mut capture = |actions: Vec<Action<NodeId>>, me: NodeId| {
            for a in actions {
                if let Action::Multicast { message, .. } = a {
                    if message.round != 1 {
                        continue;
                    }
                    match message.opinions.get(&me) {
                        Some(Opinion::Accept(_)) => steps.push(Step::Proposed(View::from_parts(
                            message.view.clone(),
                            message.border.clone(),
                        ))),
                        Some(Opinion::Reject) => steps.push(Step::Rejected(message.view.clone())),
                        None => {}
                    }
                }
            }
        };
        // Crashes 1, 2, 3 arrive one by one; each failed instance is
        // followed by a strictly larger proposal.
        capture(n.handle(Event::Crash(NodeId(1))), NodeId(0));
        // Self-deliver the proposal so the instance can fail on ⊥.
        let own = Message {
            round: 1,
            view: region(&[1]),
            border: region(&[0, 2]),
            opinions: initial_accept_vector(NodeId(0), NodeId(0)),
        };
        capture(
            n.handle(Event::Deliver {
                from: NodeId(0),
                message: own,
            }),
            NodeId(0),
        );
        capture(n.handle(Event::Crash(NodeId(2))), NodeId(0));
        capture(n.handle(Event::Crash(NodeId(3))), NodeId(0));
        let proposals: Vec<&View> = steps
            .iter()
            .filter_map(|s| match s {
                Step::Proposed(v) => Some(v),
                Step::Rejected(_) => None,
            })
            .collect();
        assert!(
            proposals.len() >= 2,
            "expected several proposals: {steps:?}"
        );
        for w in proposals.windows(2) {
            assert_eq!(
                w[1].rank_cmp(w[0]),
                std::cmp::Ordering::Greater,
                "{} must outrank {}",
                w[1],
                w[0]
            );
        }
        // Never propose a view rejected *earlier* (rejecting one's own
        // stale proposal afterwards is legal and expected).
        for (i, step) in steps.iter().enumerate() {
            if let Step::Proposed(v) = step {
                let rejected_before = steps[..i]
                    .iter()
                    .any(|s| matches!(s, Step::Rejected(r) if r == v.region()));
                assert!(!rejected_before, "proposed previously rejected view {v}");
            }
        }
        // The stale {1} did get rejected after the bigger proposal.
        assert!(steps.contains(&Step::Rejected(region(&[1]))), "{steps:?}");
    }

    /// Lemma 3: all nodes completing a consensus instance on the same
    /// view hold identical opinion vectors (here read out of the final
    /// round's slot after a full agreement).
    #[test]
    fn lemma3_completing_nodes_hold_identical_vectors() {
        let g = Arc::new(precipice_graph::star(5));
        let mut net = Net::new(&g, [1, 2, 3, 4]);
        net.release(0);
        net.pump();
        let view = region(&[0]);
        let final_round = 3; // |B| = 4 participants
        let mut vectors = Vec::new();
        for (id, node) in &net.nodes {
            let inst = node.received.get(&view).expect("participated");
            vectors.push((id, inst.vector(final_round).clone()));
        }
        assert_eq!(vectors.len(), 4);
        let (first_id, first) = &vectors[0];
        let _ = first_id;
        for (id, v) in &vectors[1..] {
            assert_eq!(v, first, "{id} diverged from {first_id}");
        }
        // ... and the common vector is all-accept over the full border.
        assert_eq!(first.len(), 4);
        assert!(first.values().all(Opinion::is_accept));
    }

    /// Lemma 1 (cross-node form): for any view, each participant has at
    /// most one accept *value* across every vector of every node — an
    /// accept entry can only originate from the unique proposal event of
    /// that participant (line 16).
    #[test]
    fn lemma1_accept_values_are_unique_per_node_and_view() {
        use std::collections::BTreeMap;
        let g = Arc::new(Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]));
        let mut net = Net::new(&g, [0, 3]);
        net.notify_one(0, 1);
        net.pump();
        net.notify_one(0, 2);
        net.pump();
        net.release(1);
        net.release(2);
        net.pump();
        // Collect every (view, participant) -> set of accept values seen
        // anywhere in the system.
        let mut values: BTreeMap<(Region, NodeId), BTreeSet<NodeId>> = BTreeMap::new();
        for node in net.nodes.values() {
            for (view_region, inst) in &node.received {
                let rounds = inst.view().total_rounds();
                for r in 1..=rounds {
                    for (pk, op) in inst.vector(r) {
                        if let Opinion::Accept(v) = op {
                            values
                                .entry((view_region.clone(), *pk))
                                .or_default()
                                .insert(*v);
                        }
                    }
                }
            }
        }
        assert!(!values.is_empty());
        for ((view, pk), vs) in values {
            assert_eq!(
                vs.len(),
                1,
                "{pk} has several accept values for {view}: {vs:?}"
            );
        }
    }

    #[test]
    fn no_event_no_action() {
        // A node with no crashed neighbours stays silent forever: feed
        // it a foreign message and it only records state (CD3 locality is
        // enforced by never *initiating* anything).
        let g = Arc::new(Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]));
        let mut n = Node::new(NodeId(3), g, NodeIdValuePolicy, ProtocolConfig::default());
        n.handle(Event::Init);
        let msg = Message {
            round: 1,
            view: region(&[1]),
            border: region(&[0, 2]),
            opinions: initial_accept_vector(NodeId(0), NodeId(0)),
        };
        let actions = n.handle(Event::Deliver {
            from: NodeId(0),
            message: msg,
        });
        assert!(
            actions.is_empty(),
            "non-border node never responds: {actions:?}"
        );
    }
}
