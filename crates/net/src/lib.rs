//! Live thread-per-node backend for cliff-edge consensus.
//!
//! Runs the exact same sans-io [`CliffEdgeNode`](precipice_core::CliffEdgeNode)
//! state machine as the simulator, but on real OS threads exchanging
//! messages over `crossbeam` FIFO channels — demonstrating that the
//! protocol core is transport-agnostic and exercising it under genuine
//! concurrency and nondeterministic scheduling (experiment E8).
//!
//! The paper's perfect failure detector is provided by a **kill-switch
//! oracle**: crashes are always *induced* (via [`LiveCluster::kill`]), so
//! the oracle knows the ground truth and can notify subscribers without
//! ever suspecting a live node — the only way to realize a perfect FD in
//! an asynchronous system. A killed node stops processing immediately
//! (its kill flag is checked before every event) and its queued inbox is
//! discarded; messages it sent earlier remain in flight, matching the
//! paper's reliable-channel model.
//!
//! # Example
//!
//! ```
//! use precipice_graph::{path, NodeId};
//! use precipice_net::LiveCluster;
//! use std::time::Duration;
//!
//! let mut cluster = LiveCluster::start(path(3), Default::default());
//! cluster.kill(NodeId(1));
//! assert!(cluster.await_quiescence(Duration::from_millis(100), Duration::from_secs(10)));
//! let report = cluster.shutdown();
//! let d0 = &report.decisions[&NodeId(0)];
//! let d2 = &report.decisions[&NodeId(2)];
//! assert_eq!(d0, d2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cluster;
mod oracle;

pub use cluster::{LiveCluster, LiveReport};
pub use oracle::Oracle;
