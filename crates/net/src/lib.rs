//! Live backends for cliff-edge consensus: a sharded event-loop runtime
//! (the default) and the original thread-per-node reference.
//!
//! Both run the exact same sans-io
//! [`CliffEdgeNode`](precipice_core::CliffEdgeNode) state machine as the
//! simulator, under genuine concurrency and nondeterministic scheduling
//! (experiment E8) — demonstrating that the protocol core is
//! transport-agnostic.
//!
//! - [`ShardedCluster`] — `W` worker shards own disjoint ranges of one
//!   shared topology (owned or mapped `.pcsr`), activate nodes on
//!   demand, and exchange events over bounded MPSC [`ring`]s. This is
//!   the backend behind `Engine::Live`, `precipice serve`
//!   ([`ServeSession`]) and live schedule exploration ([`gated_run`]).
//!   Footprint is proportional to the *touched* nodes, so one process
//!   hosts 10⁶-node topologies.
//! - [`LiveCluster`] — one OS thread and one unbounded channel per
//!   node. Kept as the executable reference the sharded runtime is
//!   differentially tested against (`tests/sharded_vs_threaded.rs`);
//!   practical to a few thousand nodes.
//!
//! The paper's perfect failure detector is a **kill-switch oracle** in
//! both backends: crashes are always *induced* (via `kill`), so the
//! runtime knows the ground truth and can notify observers without ever
//! suspecting a live node — the only way to realize a perfect FD in an
//! asynchronous system. The sharded runtime resolves observers from the
//! shared graph (neighbours are implicitly subscribed, so passive nodes
//! are never woken just to subscribe), exactly like the sim's
//! graph-backed detector. A killed node stops processing immediately —
//! queued and in-flight events addressed to it are dropped — while
//! messages it sent earlier remain deliverable, matching the paper's
//! reliable-channel model.
//!
//! # Example
//!
//! ```
//! use precipice_graph::{torus, GridDims, NodeId};
//! use precipice_net::ShardedCluster;
//! use std::time::Duration;
//!
//! let mut cluster = ShardedCluster::start(torus(GridDims::square(4)), Default::default(), 2);
//! cluster.kill(NodeId(9));
//! assert!(cluster.await_quiescence(Duration::from_millis(100), Duration::from_secs(10)));
//! // Only the 4 border nodes ever materialized.
//! assert_eq!(cluster.activated(), 4);
//! let report = cluster.shutdown();
//! assert_eq!(report.decisions.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cluster;
mod gate;
mod oracle;
pub mod ring;
mod serve;
mod shard;

pub use cluster::{LiveCluster, LiveReport};
pub use gate::{gated_run, live_consistent, GatedOutcome};
pub use oracle::Oracle;
pub use serve::ServeSession;
pub use shard::{RouterCounters, ShardedCluster};
