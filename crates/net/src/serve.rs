//! The `precipice serve` session: line-delimited JSON driving live
//! agreement instances (maelstrom-style).
//!
//! A [`ServeSession`] is the protocol brain behind the CLI's `serve`
//! subcommand, factored as a library so tests can drive it in-process:
//! one command line in, one response line out, no I/O in here. Each
//! *instance* is an independent [`ShardedCluster`] over its own
//! topology — many instances run concurrently in one process, and a
//! mapped `.pcsr` topology puts a 10⁶-node instance within one
//! process's reach.
//!
//! # Protocol
//!
//! Requests are single-line JSON objects with a `"cmd"` field;
//! responses always carry `"ok"` (with `"error"` explaining a
//! failure). Commands:
//!
//! | cmd | fields | effect |
//! |-----|--------|--------|
//! | `open` | `topology`, `id?`, `shards?`, `optimized?` | start an instance |
//! | `crash` | `id?`, `node` | kill a node |
//! | `await` | `id?`, `quiet_ms?`, `timeout_ms?` | wait for quiescence |
//! | `read` | `id?`, `node` | that node's decision, if any |
//! | `status` | `id?` | instance counters |
//! | `close` | `id?` | shut the instance down, report verdict |
//! | `shutdown` | | close everything and end the session |
//!
//! `topology` accepts `torus:N`, `grid:WxH`, `ring:N`, `path:N`,
//! `star:N` and `pcsr:PATH` (a mapped graph store file). `id` defaults
//! to `"default"` everywhere.
//!
//! A worked session (`$` = request, `>` = response):
//!
//! ```text
//! $ {"cmd":"open","topology":"torus:4","shards":2}
//! > {"ok":true,"id":"default","nodes":16,"shards":2}
//! $ {"cmd":"crash","node":9}
//! > {"ok":true,"killed":9}
//! $ {"cmd":"await"}
//! > {"ok":true,"quiescent":true,"pending":0}
//! $ {"cmd":"read","node":8}
//! > {"ok":true,"node":8,"decided":true,"region":[9],"border":[5,8,10,13],"value":5}
//! $ {"cmd":"close"}
//! > {"ok":true,"id":"default","decisions":4,"killed":1,"consistent":true}
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use precipice_core::json::Json;
use precipice_core::ProtocolConfig;
use precipice_graph::{grid, path, ring, star, torus, Graph, GridDims, NodeId, Region};

use crate::gate::live_consistent;
use crate::shard::ShardedCluster;

/// Default worker shard count for instances that don't specify one.
const DEFAULT_SHARDS: usize = 2;

/// A long-lived serve session: named live instances plus the command
/// dispatcher. See the [module docs](self) for the wire protocol.
#[derive(Debug)]
pub struct ServeSession {
    instances: BTreeMap<String, ShardedCluster>,
    default_shards: usize,
    finished: bool,
}

impl Default for ServeSession {
    fn default() -> Self {
        Self::new(DEFAULT_SHARDS)
    }
}

impl ServeSession {
    /// Creates an empty session; `default_shards` applies to `open`
    /// commands that don't pass `shards`.
    pub fn new(default_shards: usize) -> Self {
        ServeSession {
            instances: BTreeMap::new(),
            default_shards: default_shards.max(1),
            finished: false,
        }
    }

    /// True once a `shutdown` command was processed: the driver should
    /// stop reading and exit cleanly.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Handles one request line, returning the response line (no
    /// trailing newline).
    pub fn handle_line(&mut self, line: &str) -> String {
        self.handle(line).unwrap_or_else(err).to_line()
    }

    fn handle(&mut self, line: &str) -> Result<Json, String> {
        let request = Json::parse(line.trim()).map_err(|e| e.to_string())?;
        let cmd = request
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("missing \"cmd\"")?
            .to_owned();
        match cmd.as_str() {
            "open" => self.open(&request),
            "crash" => self.crash(&request),
            "await" => self.await_quiet(&request),
            "read" => self.read(&request),
            "status" => self.status(&request),
            "close" => self.close(&request),
            "shutdown" => self.shutdown_all(),
            other => Err(format!("unknown cmd {other:?}")),
        }
    }

    fn open(&mut self, request: &Json) -> Result<Json, String> {
        let id = instance_id(request);
        if self.instances.contains_key(&id) {
            return Err(format!("instance {id:?} already open"));
        }
        let spec = request
            .get("topology")
            .and_then(Json::as_str)
            .ok_or("open needs a \"topology\"")?;
        let graph = parse_topology(spec)?;
        let shards = match request.get("shards") {
            Some(v) => v.as_u64().ok_or("\"shards\" must be a positive integer")? as usize,
            None => self.default_shards,
        };
        if shards == 0 {
            return Err("\"shards\" must be a positive integer".into());
        }
        let config = match request.get("optimized").and_then(Json::as_bool) {
            Some(true) => ProtocolConfig::optimized(),
            _ => ProtocolConfig::default(),
        };
        let cluster = ShardedCluster::start_shared(Arc::new(graph), config, shards);
        let nodes = cluster.graph().len();
        let shards = cluster.shards();
        self.instances.insert(id.clone(), cluster);
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("id", Json::from(id)),
            ("nodes", Json::from(nodes)),
            ("shards", Json::from(shards)),
        ]))
    }

    fn instance(&mut self, request: &Json) -> Result<&mut ShardedCluster, String> {
        let id = instance_id(request);
        self.instances
            .get_mut(&id)
            .ok_or_else(|| format!("no open instance {id:?}"))
    }

    fn crash(&mut self, request: &Json) -> Result<Json, String> {
        let node = node_field(request)?;
        let cluster = self.instance(request)?;
        if !cluster.graph().contains(node) {
            return Err(format!("{node} is not in the topology"));
        }
        cluster.kill(node);
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("killed", Json::from(node.0 as u64)),
        ]))
    }

    fn await_quiet(&mut self, request: &Json) -> Result<Json, String> {
        let quiet = duration_field(request, "quiet_ms", 100)?;
        let timeout = duration_field(request, "timeout_ms", 30_000)?;
        let cluster = self.instance(request)?;
        let quiescent = cluster.await_quiescence(quiet, timeout);
        let pending = cluster.pending();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("quiescent", Json::Bool(quiescent)),
            ("pending", Json::from(pending)),
        ]))
    }

    fn read(&mut self, request: &Json) -> Result<Json, String> {
        let node = node_field(request)?;
        let cluster = self.instance(request)?;
        if !cluster.graph().contains(node) {
            return Err(format!("{node} is not in the topology"));
        }
        let mut fields = vec![
            ("ok", Json::Bool(true)),
            ("node", Json::from(node.0 as u64)),
        ];
        if cluster.killed().contains(&node) {
            fields.push(("crashed", Json::Bool(true)));
            fields.push(("decided", Json::Bool(false)));
        } else if let Some((view, value)) = cluster.decision_of(node) {
            fields.push(("decided", Json::Bool(true)));
            fields.push(("region", region_json(view.region())));
            fields.push(("border", region_json(view.border())));
            fields.push(("value", Json::from(value.0 as u64)));
        } else {
            fields.push(("decided", Json::Bool(false)));
        }
        Ok(Json::obj(fields))
    }

    fn status(&mut self, request: &Json) -> Result<Json, String> {
        let id = instance_id(request);
        let cluster = self.instance(request)?;
        let killed: Vec<Json> = cluster
            .killed()
            .iter()
            .map(|n| Json::from(n.0 as u64))
            .collect();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("id", Json::from(id)),
            ("nodes", Json::from(cluster.graph().len())),
            ("shards", Json::from(cluster.shards())),
            ("activated", Json::from(cluster.activated())),
            ("pending", Json::from(cluster.pending())),
            ("decisions", Json::from(cluster.decisions_snapshot().len())),
            ("killed", Json::Arr(killed)),
            ("spilled", Json::from(cluster.spilled())),
        ]))
    }

    fn close(&mut self, request: &Json) -> Result<Json, String> {
        let id = instance_id(request);
        let cluster = self
            .instances
            .remove(&id)
            .ok_or_else(|| format!("no open instance {id:?}"))?;
        Ok(close_report(id, cluster))
    }

    fn shutdown_all(&mut self) -> Result<Json, String> {
        let mut closed = Vec::new();
        let mut all_consistent = true;
        for (id, cluster) in std::mem::take(&mut self.instances) {
            let report = close_report(id.clone(), cluster);
            all_consistent &= report.get("consistent").and_then(Json::as_bool) == Some(true);
            closed.push(Json::from(id));
        }
        self.finished = true;
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("closed", Json::Arr(closed)),
            ("consistent", Json::Bool(all_consistent)),
        ]))
    }
}

/// Shuts `cluster` down and summarizes it: decision count, kill count,
/// and the live agreement verdict (every decision internally consistent
/// and pairwise in agreement — the full CD1–CD7 oracle is the runtime
/// checker's job).
fn close_report(id: String, cluster: ShardedCluster) -> Json {
    let graph = Arc::clone(cluster.graph());
    let killed = cluster.killed().len();
    let report = cluster.shutdown();
    let consistent = live_consistent(&report, &graph);
    Json::obj([
        ("ok", Json::Bool(true)),
        ("id", Json::from(id)),
        ("decisions", Json::from(report.decisions.len())),
        ("killed", Json::from(killed)),
        ("consistent", Json::Bool(consistent)),
    ])
}

fn err(message: String) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::from(message))])
}

fn instance_id(request: &Json) -> String {
    request
        .get("id")
        .and_then(Json::as_str)
        .unwrap_or("default")
        .to_owned()
}

fn node_field(request: &Json) -> Result<NodeId, String> {
    request
        .get("node")
        .and_then(Json::as_u64)
        .filter(|&n| n <= u32::MAX as u64)
        .map(|n| NodeId(n as u32))
        .ok_or_else(|| "missing or invalid \"node\"".into())
}

fn duration_field(request: &Json, key: &str, default_ms: u64) -> Result<Duration, String> {
    match request.get(key) {
        None => Ok(Duration::from_millis(default_ms)),
        Some(v) => v
            .as_u64()
            .map(Duration::from_millis)
            .ok_or_else(|| format!("\"{key}\" must be a non-negative integer (milliseconds)")),
    }
}

fn region_json(region: &Region) -> Json {
    Json::Arr(region.iter().map(|n| Json::from(n.0 as u64)).collect())
}

/// Parses a serve topology spec: `torus:N`, `grid:WxH`, `ring:N`,
/// `path:N`, `star:N`, or `pcsr:PATH` (opened as a mapped graph).
fn parse_topology(spec: &str) -> Result<Graph, String> {
    if let Some(file) = spec.strip_prefix("pcsr:") {
        return Graph::open_pcsr(file).map_err(|e| format!("open {file}: {e}"));
    }
    let (kind, arg) = spec
        .split_once(':')
        .ok_or_else(|| format!("malformed topology {spec:?}"))?;
    let n = |arg: &str| -> Result<usize, String> {
        arg.parse::<usize>()
            .map_err(|_| format!("bad topology size {arg:?}"))
    };
    match kind {
        "torus" => Ok(torus(GridDims::square(n(arg)?))),
        "grid" => match arg.split_once('x') {
            Some((w, h)) => Ok(grid(GridDims {
                width: n(w)?,
                height: n(h)?,
            })),
            None => Ok(grid(GridDims::square(n(arg)?))),
        },
        "ring" => Ok(ring(n(arg)?)),
        "path" => Ok(path(n(arg)?)),
        "star" => Ok(star(n(arg)?)),
        other => Err(format!("unknown topology kind {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(response: &str) -> Json {
        let v = Json::parse(response).expect("response parses");
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "expected ok: {response}"
        );
        v
    }

    fn fail(response: &str) -> String {
        let v = Json::parse(response).expect("response parses");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        v.get("error").and_then(Json::as_str).unwrap().to_owned()
    }

    #[test]
    fn full_round_trip_crash_agree_read() {
        let mut s = ServeSession::default();
        let opened = ok(&s.handle_line(r#"{"cmd":"open","topology":"torus:4","shards":2}"#));
        assert_eq!(opened.get("nodes").and_then(Json::as_u64), Some(16));
        ok(&s.handle_line(r#"{"cmd":"crash","node":9}"#));
        let waited = ok(&s.handle_line(r#"{"cmd":"await","quiet_ms":150,"timeout_ms":20000}"#));
        assert_eq!(waited.get("quiescent").and_then(Json::as_bool), Some(true));
        let read = ok(&s.handle_line(r#"{"cmd":"read","node":8}"#));
        assert_eq!(read.get("decided").and_then(Json::as_bool), Some(true));
        assert_eq!(
            read.get("region")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
        let closed = ok(&s.handle_line(r#"{"cmd":"close"}"#));
        assert_eq!(closed.get("consistent").and_then(Json::as_bool), Some(true));
        assert_eq!(closed.get("decisions").and_then(Json::as_u64), Some(4));
        assert!(!s.finished());
        ok(&s.handle_line(r#"{"cmd":"shutdown"}"#));
        assert!(s.finished());
    }

    #[test]
    fn many_concurrent_instances() {
        let mut s = ServeSession::new(1);
        for i in 0..4 {
            ok(&s.handle_line(&format!(
                r#"{{"cmd":"open","id":"i{i}","topology":"path:5"}}"#
            )));
            ok(&s.handle_line(&format!(r#"{{"cmd":"crash","id":"i{i}","node":2}}"#)));
        }
        for i in 0..4 {
            let waited = ok(&s.handle_line(&format!(
                r#"{{"cmd":"await","id":"i{i}","quiet_ms":150,"timeout_ms":20000}}"#
            )));
            assert_eq!(waited.get("quiescent").and_then(Json::as_bool), Some(true));
        }
        let down = ok(&s.handle_line(r#"{"cmd":"shutdown"}"#));
        assert_eq!(down.get("consistent").and_then(Json::as_bool), Some(true));
        assert_eq!(
            down.get("closed")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(4)
        );
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = ServeSession::default();
        assert!(fail(&s.handle_line("not json")).contains("json error"));
        assert!(fail(&s.handle_line(r#"{"nope":1}"#)).contains("cmd"));
        assert!(fail(&s.handle_line(r#"{"cmd":"warp"}"#)).contains("unknown cmd"));
        assert!(fail(&s.handle_line(r#"{"cmd":"crash","node":0}"#)).contains("no open instance"));
        ok(&s.handle_line(r#"{"cmd":"open","topology":"path:3"}"#));
        assert!(
            fail(&s.handle_line(r#"{"cmd":"open","topology":"path:3"}"#)).contains("already open")
        );
        assert!(fail(&s.handle_line(r#"{"cmd":"crash","node":99}"#)).contains("not in"));
        assert!(
            fail(&s.handle_line(r#"{"cmd":"open","id":"x","topology":"moebius:3"}"#))
                .contains("unknown topology")
        );
        assert!(
            fail(&s.handle_line(r#"{"cmd":"open","id":"x","topology":"torus"}"#))
                .contains("malformed")
        );
        // The session is still usable.
        ok(&s.handle_line(r#"{"cmd":"status"}"#));
        ok(&s.handle_line(r#"{"cmd":"shutdown"}"#));
    }

    #[test]
    fn read_of_crashed_and_undecided_nodes() {
        let mut s = ServeSession::default();
        ok(&s.handle_line(r#"{"cmd":"open","topology":"path:5"}"#));
        ok(&s.handle_line(r#"{"cmd":"crash","node":2}"#));
        ok(&s.handle_line(r#"{"cmd":"await","quiet_ms":150,"timeout_ms":20000}"#));
        let dead = ok(&s.handle_line(r#"{"cmd":"read","node":2}"#));
        assert_eq!(dead.get("crashed").and_then(Json::as_bool), Some(true));
        let far = ok(&s.handle_line(r#"{"cmd":"read","node":4}"#));
        assert_eq!(far.get("decided").and_then(Json::as_bool), Some(false));
        ok(&s.handle_line(r#"{"cmd":"shutdown"}"#));
    }

    #[test]
    fn status_reports_lazy_footprint() {
        let mut s = ServeSession::default();
        ok(&s.handle_line(r#"{"cmd":"open","topology":"torus:16","shards":3}"#));
        ok(&s.handle_line(r#"{"cmd":"crash","node":100}"#));
        ok(&s.handle_line(r#"{"cmd":"await","quiet_ms":150,"timeout_ms":20000}"#));
        let status = ok(&s.handle_line(r#"{"cmd":"status"}"#));
        assert_eq!(status.get("nodes").and_then(Json::as_u64), Some(256));
        assert_eq!(status.get("activated").and_then(Json::as_u64), Some(4));
        assert_eq!(status.get("decisions").and_then(Json::as_u64), Some(4));
        ok(&s.handle_line(r#"{"cmd":"shutdown"}"#));
    }
}
