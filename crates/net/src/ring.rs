//! Bounded MPSC rings: the cross-shard mailboxes of the sharded runtime.
//!
//! Each worker shard owns exactly one [`Ring`]; every other shard (and
//! the control thread) posts into it. The common case stays inside a
//! **fixed-capacity circular buffer** — one allocation at startup, cache-
//! friendly FIFO churn — which is what replaces the per-node unbounded
//! crossbeam channels of the thread-per-node backend: with `W` shards
//! there are `W` rings total instead of `N` channels for `N` nodes.
//!
//! # Why pushes never block
//!
//! A shard posts into peer rings *from inside an event handler*. If a
//! push could block on a full ring, two shards flooding each other would
//! deadlock (each stuck pushing, neither draining). So a push that finds
//! the ring full **spills** into an unbounded overflow queue instead of
//! blocking; the consumer refills the ring from the spill as it drains.
//! The ring capacity therefore bounds *steady-state* memory and keeps
//! the hot path allocation-free, while the spill count
//! ([`Ring::spilled`]) reports how often a burst exceeded it.
//!
//! Built on `std::sync::{Mutex, Condvar}` — the vendored `parking_lot`
//! has no condvar, and the vendored crossbeam has no bounded channel.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Outcome of a blocking [`Ring::pop`].
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// An event was dequeued.
    Item(T),
    /// The ring is closed and fully drained: the consumer can exit.
    Closed,
    /// Nothing arrived within the timeout.
    TimedOut,
}

#[derive(Debug)]
struct RingState<T> {
    /// The bounded circular buffer. `None` slots are free.
    slots: Vec<Option<T>>,
    /// Index of the oldest element (next to pop).
    head: usize,
    /// Number of occupied slots.
    len: usize,
    /// Overflow for bursts beyond `slots.len()`; drained back into the
    /// ring as slots free up, preserving global FIFO order.
    spill: VecDeque<T>,
    /// Total events that ever took the spill path.
    spilled: u64,
    /// No further pushes will be accepted once set.
    closed: bool,
}

/// A bounded multi-producer single-consumer ring with an unbounded
/// overflow lane (see the [module docs](self) for why overflow beats
/// blocking here).
///
/// Multiple threads may push; one shard thread pops. Nothing enforces
/// the single consumer — the queue stays correct with several — but the
/// sharded runtime dedicates one ring per shard.
#[derive(Debug)]
pub struct Ring<T> {
    state: Mutex<RingState<T>>,
    ready: Condvar,
}

impl<T> Ring<T> {
    /// Creates a ring holding up to `capacity` events before spilling.
    /// A zero capacity is clamped to one slot.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        Ring {
            state: Mutex::new(RingState {
                slots,
                head: 0,
                len: 0,
                spill: VecDeque::new(),
                spilled: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues `item`; never blocks. Returns `false` (dropping the
    /// item) if the ring is closed.
    pub fn push(&self, item: T) -> bool {
        let mut s = self.state.lock().expect("ring lock");
        if s.closed {
            return false;
        }
        if s.len < s.slots.len() {
            let tail = (s.head + s.len) % s.slots.len();
            debug_assert!(s.slots[tail].is_none(), "tail slot must be free");
            s.slots[tail] = Some(item);
            s.len += 1;
        } else {
            s.spill.push_back(item);
            s.spilled += 1;
        }
        drop(s);
        self.ready.notify_one();
        true
    }

    /// Dequeues the oldest event, waiting up to `timeout` for one to
    /// arrive. Returns [`Pop::Closed`] once the ring is closed *and*
    /// empty — close is drain-then-stop, not abort.
    pub fn pop(&self, timeout: Duration) -> Pop<T> {
        let mut s = self.state.lock().expect("ring lock");
        loop {
            if s.len > 0 {
                let head = s.head;
                let item = s.slots[head].take().expect("occupied head");
                s.head = (head + 1) % s.slots.len();
                s.len -= 1;
                // Promote one spilled event into the freed slot so the
                // spill drains in arrival order.
                if let Some(promoted) = s.spill.pop_front() {
                    let tail = (s.head + s.len) % s.slots.len();
                    s.slots[tail] = Some(promoted);
                    s.len += 1;
                }
                return Pop::Item(item);
            }
            if s.closed {
                return Pop::Closed;
            }
            let (next, wait) = self
                .ready
                .wait_timeout(s, timeout)
                .expect("ring condvar wait");
            s = next;
            if wait.timed_out() && s.len == 0 {
                return if s.closed { Pop::Closed } else { Pop::TimedOut };
            }
        }
    }

    /// Closes the ring: future pushes are refused, the consumer drains
    /// what is queued and then sees [`Pop::Closed`].
    pub fn close(&self) {
        self.state.lock().expect("ring lock").closed = true;
        self.ready.notify_all();
    }

    /// Events currently queued (ring + spill).
    pub fn queued(&self) -> usize {
        let s = self.state.lock().expect("ring lock");
        s.len + s.spill.len()
    }

    /// Total events that overflowed the bounded buffer so far.
    pub fn spilled(&self) -> u64 {
        self.state.lock().expect("ring lock").spilled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const TICK: Duration = Duration::from_millis(10);

    #[test]
    fn fifo_within_capacity() {
        let ring = Ring::new(4);
        for i in 0..4 {
            assert!(ring.push(i));
        }
        assert_eq!(ring.queued(), 4);
        for i in 0..4 {
            assert_eq!(ring.pop(TICK), Pop::Item(i));
        }
        assert_eq!(ring.pop(Duration::from_millis(1)), Pop::TimedOut);
        assert_eq!(ring.spilled(), 0);
    }

    #[test]
    fn overflow_spills_and_preserves_order() {
        let ring = Ring::new(2);
        for i in 0..7 {
            assert!(ring.push(i));
        }
        assert_eq!(ring.spilled(), 5, "five events beyond the two slots");
        let drained: Vec<i32> = (0..7)
            .map(|_| match ring.pop(TICK) {
                Pop::Item(v) => v,
                other => panic!("expected item, got {other:?}"),
            })
            .collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn close_drains_then_stops() {
        let ring = Ring::new(2);
        ring.push("a");
        ring.close();
        assert!(!ring.push("b"), "push after close is refused");
        assert_eq!(ring.pop(TICK), Pop::Item("a"));
        assert_eq!(ring.pop(TICK), Pop::Closed);
    }

    #[test]
    fn wraparound_reuses_slots() {
        let ring = Ring::new(3);
        for round in 0..10 {
            ring.push(round);
            assert_eq!(ring.pop(TICK), Pop::Item(round));
        }
        assert_eq!(ring.spilled(), 0, "steady state never spills");
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let ring = Arc::new(Ring::new(8));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        assert!(ring.push(p * 1000 + i));
                    }
                })
            })
            .collect();
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while got.len() < 1000 {
                    match ring.pop(Duration::from_secs(5)) {
                        Pop::Item(v) => got.push(v),
                        other => panic!("lost events: {other:?} after {}", got.len()),
                    }
                }
                got
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        let mut got = consumer.join().unwrap();
        got.sort_unstable();
        let mut want: Vec<i32> = (0..4)
            .flat_map(|p| (0..250).map(move |i| p * 1000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        // Per-producer FIFO is preserved even across the spill lane.
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let ring = Arc::new(Ring::new(2));
        let waiter = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.pop(Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        ring.push(42);
        assert_eq!(waiter.join().unwrap(), Pop::Item(42));
    }
}
