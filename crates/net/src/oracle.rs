use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::Sender;
use parking_lot::Mutex;
use precipice_graph::NodeId;

/// Inbox traffic of a live node: either a protocol message or a
/// failure-detector notification. Generic over the raw protocol payload.
#[derive(Debug)]
pub(crate) enum Inbox<M> {
    /// A protocol message from a peer.
    Proto {
        /// Sender.
        from: NodeId,
        /// Payload.
        message: M,
    },
    /// The failure detector reports `0`'s crash.
    Crash(NodeId),
    /// Orderly termination (not a crash): drain and exit.
    Shutdown,
}

struct OracleState<M> {
    /// Ground-truth kills.
    crashed: BTreeSet<NodeId>,
    /// target -> observers awaiting its crash.
    subscribers: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// Exactly-once notification guard.
    notified: BTreeSet<(NodeId, NodeId)>,
    /// Inbox senders, per node.
    inboxes: BTreeMap<NodeId, Sender<Inbox<M>>>,
}

/// The kill-switch perfect failure detector shared by a
/// [`LiveCluster`](crate::LiveCluster).
///
/// Strong accuracy: only killed nodes (via
/// [`LiveCluster::kill`](crate::LiveCluster::kill)) are ever reported.
/// Strong completeness: every subscriber of a killed node is notified
/// exactly once — immediately if it subscribes after the kill.
pub struct Oracle<M> {
    state: Mutex<OracleState<M>>,
    /// Outstanding (sent, not yet fully processed) events across the
    /// cluster; zero means quiescent.
    pending: AtomicU64,
}

impl<M> std::fmt::Debug for Oracle<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("Oracle")
            .field("crashed", &state.crashed)
            .field("pending", &self.pending.load(Ordering::SeqCst))
            .finish()
    }
}

impl<M> Oracle<M> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Oracle {
            state: Mutex::new(OracleState {
                crashed: BTreeSet::new(),
                subscribers: BTreeMap::new(),
                notified: BTreeSet::new(),
                inboxes: BTreeMap::new(),
            }),
            pending: AtomicU64::new(0),
        })
    }

    pub(crate) fn register(&self, node: NodeId, sender: Sender<Inbox<M>>) {
        self.state.lock().inboxes.insert(node, sender);
    }

    /// Counts one unit of outstanding work that is not an inbox event
    /// (a node's `Init` handler, charged at spawn and acknowledged via
    /// [`Oracle::done`] once the handler ran). Without it, quiescence
    /// could be declared while a freshly spawned thread — whose `Init`
    /// subscribes to neighbours and may immediately observe a crash —
    /// has not been scheduled yet.
    pub(crate) fn charge(&self) {
        self.pending.fetch_add(1, Ordering::SeqCst);
    }

    /// Sends an inbox event, bumping the pending counter.
    pub(crate) fn post(&self, to: NodeId, event: Inbox<M>) {
        let state = self.state.lock();
        if let Some(tx) = state.inboxes.get(&to) {
            self.pending.fetch_add(1, Ordering::SeqCst);
            if tx.send(event).is_err() {
                // Receiver already gone (killed/shut down): the event
                // will never be processed.
                self.pending.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// Marks one posted event (or charged work unit) as fully processed.
    pub(crate) fn done(&self) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
    }

    /// Current number of posted-but-unprocessed events and charged work
    /// units (zero exactly when the cluster is quiescent).
    pub fn pending(&self) -> u64 {
        self.pending.load(Ordering::SeqCst)
    }

    /// Subscribes `observer` to `target`'s crash; notifies at once if
    /// `target` is already dead.
    pub(crate) fn subscribe(&self, observer: NodeId, target: NodeId) {
        let already_crashed = {
            let mut state = self.state.lock();
            if state.crashed.contains(&target) {
                state.notified.insert((observer, target))
            } else {
                state
                    .subscribers
                    .entry(target)
                    .or_default()
                    .insert(observer);
                false
            }
        };
        if already_crashed {
            self.post(observer, Inbox::Crash(target));
        }
    }

    /// Records `target`'s crash and notifies all current subscribers.
    pub(crate) fn kill(&self, target: NodeId) -> Vec<NodeId> {
        let to_notify: Vec<NodeId> = {
            let mut state = self.state.lock();
            if !state.crashed.insert(target) {
                return Vec::new();
            }
            // A dead node's inbox must not accumulate further traffic.
            state.inboxes.remove(&target);
            let observers = state.subscribers.remove(&target).unwrap_or_default();
            observers
                .into_iter()
                .filter(|obs| state.notified.insert((*obs, target)))
                .collect()
        };
        for obs in &to_notify {
            self.post(*obs, Inbox::Crash(target));
        }
        to_notify
    }

    /// `true` if `node` was killed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.state.lock().crashed.contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn subscribe_then_kill_notifies_once() {
        let oracle: Arc<Oracle<()>> = Oracle::new();
        let (tx, rx) = unbounded();
        oracle.register(NodeId(0), tx);
        oracle.subscribe(NodeId(0), NodeId(5));
        oracle.subscribe(NodeId(0), NodeId(5));
        assert_eq!(oracle.kill(NodeId(5)), vec![NodeId(0)]);
        assert!(matches!(rx.try_recv(), Ok(Inbox::Crash(NodeId(5)))));
        assert!(rx.try_recv().is_err(), "exactly once");
        assert_eq!(oracle.pending(), 1, "notification not yet processed");
        oracle.done();
        assert_eq!(oracle.pending(), 0);
    }

    #[test]
    fn late_subscription_fires_immediately() {
        let oracle: Arc<Oracle<()>> = Oracle::new();
        let (tx, rx) = unbounded();
        oracle.register(NodeId(1), tx);
        oracle.kill(NodeId(9));
        oracle.subscribe(NodeId(1), NodeId(9));
        assert!(matches!(rx.try_recv(), Ok(Inbox::Crash(NodeId(9)))));
        assert!(oracle.is_crashed(NodeId(9)));
    }

    #[test]
    fn double_kill_is_noop() {
        let oracle: Arc<Oracle<()>> = Oracle::new();
        let (tx, rx) = unbounded();
        oracle.register(NodeId(0), tx);
        oracle.subscribe(NodeId(0), NodeId(2));
        oracle.kill(NodeId(2));
        assert!(oracle.kill(NodeId(2)).is_empty());
        let _ = rx.try_recv();
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn posts_to_killed_nodes_are_dropped() {
        let oracle: Arc<Oracle<()>> = Oracle::new();
        let (tx, rx) = unbounded();
        oracle.register(NodeId(3), tx);
        oracle.kill(NodeId(3));
        oracle.post(NodeId(3), Inbox::Shutdown);
        assert!(rx.try_recv().is_err(), "inbox unregistered on kill");
        assert_eq!(oracle.pending(), 0);
    }
}
