//! Delivery gating: deterministic schedule exploration on the *real*
//! sharded backend.
//!
//! The sim side explores adversarial schedules by replacing its event
//! queue's ordering (`SchedulePolicy`). The live backend has no queue
//! to reorder — events race through rings — so this module ports the
//! idea as a **gate**: with a gate installed, the router parks every
//! would-be post (protocol message or crash notification) in a central
//! table instead of the shard rings, and a controller releases exactly
//! one event at a time, waiting for the shards to go idle between
//! releases. The run still exercises the real machinery — shard
//! threads, rings, lazy activation, pending counters, the graph-backed
//! FD — but its interleaving becomes a pure function of the
//! controller's random seed.
//!
//! The enabled set mirrors the sim explorer's frontier: every pending
//! crash *injection*, every parked crash *notification*, and — per
//! `(from, to)` channel — only the **earliest** parked delivery (live
//! channels are FIFO, so later messages on a channel cannot overtake).
//!
//! One release is one tick of a logical clock; crash injections and
//! decisions are stamped with it, which is what lets the runtime's
//! checker replay its timing-sensitive properties (CD2) against a live
//! run.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use precipice_core::{ProtocolConfig, View};
use precipice_graph::{Graph, NodeId};

use crate::cluster::LiveReport;
use crate::shard::{ShardEvent, ShardedCluster};

/// Where the router parks events while a gate controller is driving.
#[derive(Debug)]
pub(crate) struct Gate<V> {
    parked: Mutex<VecDeque<(u64, ShardEvent<V>)>>,
    next_seq: Mutex<u64>,
}

impl<V> Gate<V> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Gate {
            parked: Mutex::new(VecDeque::new()),
            next_seq: Mutex::new(0),
        })
    }

    /// Parks `event`, preserving global arrival order via a sequence
    /// number (channel FIFO needs it).
    pub(crate) fn park(&self, event: ShardEvent<V>) {
        let mut seq = self.next_seq.lock().expect("gate seq lock");
        let n = *seq;
        *seq += 1;
        self.parked
            .lock()
            .expect("gate queue lock")
            .push_back((n, event));
    }

    /// Removes and returns the parked event with sequence `seq`.
    fn take(&self, seq: u64) -> Option<ShardEvent<V>> {
        let mut parked = self.parked.lock().expect("gate queue lock");
        let at = parked.iter().position(|(s, _)| *s == seq)?;
        parked.remove(at).map(|(_, ev)| ev)
    }

    /// The current frontier: all parked notifications plus, per
    /// `(from, to)` channel, the earliest parked delivery. Returned as
    /// `(seq, label)` in sequence order.
    fn enabled(&self) -> Vec<(u64, EventLabel)> {
        let parked = self.parked.lock().expect("gate queue lock");
        let mut earliest: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
        let mut out = Vec::new();
        for (seq, ev) in parked.iter() {
            match ev {
                ShardEvent::Notify { to, crashed } => {
                    out.push((
                        *seq,
                        EventLabel::Notify {
                            to: *to,
                            crashed: *crashed,
                        },
                    ));
                }
                ShardEvent::Deliver { to, from, .. } => {
                    earliest.entry((*from, *to)).or_insert(*seq);
                }
            }
        }
        for ((from, to), seq) in earliest {
            out.push((seq, EventLabel::Deliver { from, to }));
        }
        out.sort_by_key(|(seq, _)| *seq);
        out
    }
}

/// What a released event was, for hashing and message-pair recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventLabel {
    /// A crash notification to `to` about `crashed`.
    Notify {
        /// Observer being notified.
        to: NodeId,
        /// The crashed node.
        crashed: NodeId,
    },
    /// A protocol message on channel `(from, to)`.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
}

/// Everything a gated run observed, in logical-clock terms.
///
/// `crash_steps` / `decision_steps` are release-clock stamps: a node's
/// decision step is always greater than the steps of the crashes it
/// reacted to, which is what the runtime checker's timing-sensitive
/// properties need.
#[derive(Debug)]
pub struct GatedOutcome {
    /// Final report, same shape as a free-running shutdown.
    pub report: LiveReport,
    /// Every `(from, to)` protocol delivery, in release order.
    pub message_pairs: Vec<(NodeId, NodeId)>,
    /// Release step at which each node was crash-injected.
    pub crash_steps: Vec<(NodeId, u64)>,
    /// Release step at which each node decided.
    pub decision_steps: BTreeMap<NodeId, u64>,
    /// Total events released (the run's logical length).
    pub released: u64,
    /// FNV-1a hash of the release sequence — two gated runs explored
    /// the same schedule iff their order hashes match.
    pub order_hash: u64,
}

/// Runs one fully-gated schedule of the sharded backend: crash `kills`
/// (in the given order preference; the seed decides actual placement)
/// on `graph` and drive every delivery one release at a time.
///
/// Deterministic: the outcome is a pure function of
/// `(graph, config, kills, seed)` — independent of `shards`, wall-clock
/// speed, and thread scheduling. Exercised by the differential tests
/// and `precipice check --backend live`.
///
/// # Panics
///
/// Panics if the shards fail to drain a released event within a
/// generous internal timeout (only possible if a shard thread died).
pub fn gated_run(
    graph: Arc<Graph>,
    config: ProtocolConfig,
    shards: usize,
    kills: &[NodeId],
    seed: u64,
) -> GatedOutcome {
    let gate = Gate::new();
    let mut cluster = ShardedCluster::launch(
        Arc::clone(&graph),
        config,
        shards,
        |_me| precipice_core::NodeIdValuePolicy,
        Some(Arc::clone(&gate)),
    );

    let mut rng = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut injections: VecDeque<NodeId> = kills.iter().copied().collect();
    let mut pairs = Vec::new();
    let mut crash_steps = Vec::new();
    let mut released = 0u64;
    let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis

    loop {
        // Frontier: all remaining injections + the gate's enabled set.
        let parked = gate.enabled();
        let choices = injections.len() + parked.len();
        if choices == 0 {
            break;
        }
        let pick = (splitmix(&mut rng) % choices as u64) as usize;
        let step = cluster.bump_step();
        released += 1;
        if pick < injections.len() {
            let victim = injections.remove(pick).expect("index in range");
            crash_steps.push((victim, step));
            hash = fnv(hash, &[1, victim.0 as u64, 0, step]);
            cluster.kill(victim);
            // A kill's notifications park in the gate; nothing to wait
            // for.
            continue;
        }
        let (seq, label) = parked[pick - injections.len()];
        let event = gate.take(seq).expect("enabled event still parked");
        match label {
            EventLabel::Deliver { from, to } => {
                pairs.push((from, to));
                hash = fnv(hash, &[2, from.0 as u64, to.0 as u64, step]);
            }
            EventLabel::Notify { to, crashed } => {
                hash = fnv(hash, &[3, to.0 as u64, crashed.0 as u64, step]);
            }
        }
        cluster.release_gated(event);
        drain(&cluster);
    }

    let decision_steps = cluster.decision_steps();
    let report = cluster.shutdown();
    GatedOutcome {
        report,
        message_pairs: pairs,
        crash_steps,
        decision_steps,
        released,
        order_hash: hash,
    }
}

/// Busy-waits (with micro-sleeps) until the shards finished the one
/// event in flight. Handler outputs go back to the gate, so this
/// settles after exactly one handler invocation.
fn drain<P>(cluster: &ShardedCluster<P>)
where
    P: precipice_core::DecisionPolicy + Send + 'static,
    P::Value: Send + Sync,
{
    let deadline = Instant::now() + Duration::from_secs(30);
    while cluster.pending() != 0 {
        assert!(
            Instant::now() < deadline,
            "shard failed to drain a gated release"
        );
        std::thread::sleep(Duration::from_micros(20));
    }
}

/// SplitMix64 — the repo's standard tiny deterministic RNG.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a few words.
fn fnv(mut hash: u64, words: &[u64]) -> u64 {
    for w in words {
        for byte in w.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
    hash
}

/// Sanity verdict over a gated (or free-running) live report: every
/// decision internally consistent and all pairs in agreement. This is
/// the cheap live-side check; the full CD1–CD7 oracle lives in the
/// runtime crate and runs over an assembled `RunReport`.
pub fn live_consistent(report: &LiveReport, graph: &Graph) -> bool {
    let killed: BTreeSet<NodeId> = report.killed.iter().copied().collect();
    for (node, (view, _)) in &report.decisions {
        if !view.region().iter().all(|q| killed.contains(&q)) {
            return false;
        }
        if !view.border().contains(*node) {
            return false;
        }
        if View::new(graph, view.region().clone()).border() != view.border() {
            return false;
        }
    }
    for (a, (va, da)) in &report.decisions {
        for (b, (vb, db)) in &report.decisions {
            if a >= b {
                continue;
            }
            let overlap = va.region().intersects(vb.region());
            if overlap && (va != vb || da != db) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use precipice_graph::{path, torus, GridDims};

    #[test]
    fn gated_run_is_deterministic_per_seed() {
        let graph = Arc::new(torus(GridDims::square(4)));
        let a = gated_run(
            Arc::clone(&graph),
            ProtocolConfig::default(),
            1,
            &[NodeId(9)],
            7,
        );
        let b = gated_run(
            Arc::clone(&graph),
            ProtocolConfig::default(),
            1,
            &[NodeId(9)],
            7,
        );
        assert_eq!(a.order_hash, b.order_hash);
        assert_eq!(a.report, b.report);
        assert_eq!(a.message_pairs, b.message_pairs);
        assert_eq!(a.decision_steps, b.decision_steps);
    }

    #[test]
    fn gated_run_is_shard_count_independent() {
        let graph = Arc::new(torus(GridDims::square(4)));
        let one = gated_run(
            Arc::clone(&graph),
            ProtocolConfig::default(),
            1,
            &[NodeId(5)],
            3,
        );
        let four = gated_run(
            Arc::clone(&graph),
            ProtocolConfig::default(),
            4,
            &[NodeId(5)],
            3,
        );
        assert_eq!(one.order_hash, four.order_hash);
        assert_eq!(one.report, four.report);
    }

    #[test]
    fn different_seeds_explore_different_orders() {
        let graph = Arc::new(torus(GridDims::square(4)));
        let hashes: BTreeSet<u64> = (0..6)
            .map(|seed| {
                gated_run(
                    Arc::clone(&graph),
                    ProtocolConfig::default(),
                    2,
                    &[NodeId(5), NodeId(6)],
                    seed,
                )
                .order_hash
            })
            .collect();
        assert!(hashes.len() > 1, "six seeds must not all collapse");
    }

    #[test]
    fn gated_agreement_matches_protocol_on_path() {
        let outcome = gated_run(
            Arc::new(path(5)),
            ProtocolConfig::default(),
            2,
            &[NodeId(2)],
            11,
        );
        assert_eq!(outcome.report.decisions.len(), 2);
        assert!(live_consistent(&outcome.report, &path(5)));
        // Decisions happen strictly after the crash they react to.
        let crash_step = outcome.crash_steps[0].1;
        for &at in outcome.decision_steps.values() {
            assert!(at > crash_step);
        }
    }
}
