use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError};
use precipice_core::{
    Action, CliffEdgeNode, Event, Message, NodeIdValuePolicy, ProtocolConfig, ProtocolStats, View,
};
use precipice_graph::{Graph, NodeId};

use crate::oracle::{Inbox, Oracle};

type LiveMsg = Message<NodeId>;
type LiveNode = CliffEdgeNode<Arc<Graph>, NodeIdValuePolicy>;
/// What a node thread hands back on join: its id, final state, decision.
type WorkerResult = (NodeId, LiveNode, Option<(View, NodeId)>);

/// Final state of a live run, collected by [`LiveCluster::shutdown`] or
/// [`ShardedCluster::shutdown`](crate::ShardedCluster::shutdown).
///
/// Generic over the decision value so exec-API policies carry over; the
/// default is the coordinator-election policy's [`NodeId`]. Both live
/// backends produce the same shape with the same semantics — decisions
/// and protocol counters for surviving nodes that did protocol work
/// (untouched nodes contribute nothing) — which is what the
/// sharded-vs-threaded differential suite compares byte for byte.
#[derive(Debug, PartialEq, Eq)]
pub struct LiveReport<V = NodeId> {
    /// Decisions per deciding node (view and agreed value).
    pub decisions: BTreeMap<NodeId, (View, V)>,
    /// Protocol counters per surviving node that did any protocol work.
    pub stats: BTreeMap<NodeId, ProtocolStats>,
    /// Nodes killed during the run.
    pub killed: BTreeSet<NodeId>,
}

struct Worker {
    handle: JoinHandle<WorkerResult>,
    kill_flag: Arc<AtomicBool>,
}

/// A running cluster of one protocol thread per graph node.
///
/// See the [crate docs](crate) for the failure-detection model and an
/// end-to-end example.
pub struct LiveCluster {
    graph: Arc<Graph>,
    oracle: Arc<Oracle<LiveMsg>>,
    workers: BTreeMap<NodeId, Worker>,
    killed: BTreeSet<NodeId>,
}

impl std::fmt::Debug for LiveCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveCluster")
            .field("nodes", &self.graph.len())
            .field("killed", &self.killed)
            .finish()
    }
}

impl LiveCluster {
    /// Spawns one thread per node of `graph` and starts the protocol
    /// (every node subscribes to its neighbours' crashes).
    pub fn start(graph: Graph, config: ProtocolConfig) -> Self {
        let graph = Arc::new(graph);
        let oracle: Arc<Oracle<LiveMsg>> = Oracle::new();

        // Register all inboxes before any thread runs so no early send
        // can miss a peer.
        let mut receivers: BTreeMap<NodeId, Receiver<Inbox<LiveMsg>>> = BTreeMap::new();
        for me in graph.nodes() {
            let (tx, rx) = unbounded();
            oracle.register(me, tx);
            receivers.insert(me, rx);
        }

        let mut workers = BTreeMap::new();
        for (me, inbox) in receivers {
            let kill_flag = Arc::new(AtomicBool::new(false));
            let node = CliffEdgeNode::new(me, Arc::clone(&graph), NodeIdValuePolicy, config);
            let oracle_ref = Arc::clone(&oracle);
            let flag_ref = Arc::clone(&kill_flag);
            // Charge the node's Init handler before its thread exists:
            // quiescence must not be declarable while a spawned-but-not-
            // yet-scheduled node still has subscriptions (and possibly
            // an immediate crash notification) ahead of it.
            oracle.charge();
            let handle = std::thread::Builder::new()
                .name(format!("precipice-{me}"))
                .spawn(move || node_main(me, node, inbox, oracle_ref, flag_ref))
                .expect("spawn node thread");
            workers.insert(me, Worker { handle, kill_flag });
        }
        LiveCluster {
            graph,
            oracle,
            workers,
            killed: BTreeSet::new(),
        }
    }

    /// The shared failure-detector oracle (for inspection).
    pub fn oracle(&self) -> &Oracle<LiveMsg> {
        &self.oracle
    }

    /// Induces the crash of `node`: it stops processing immediately, its
    /// queued inbox is lost, and subscribers are notified.
    pub fn kill(&mut self, node: NodeId) {
        if !self.killed.insert(node) {
            return;
        }
        if let Some(worker) = self.workers.get(&node) {
            worker.kill_flag.store(true, Ordering::SeqCst);
        }
        self.oracle.kill(node);
    }

    /// Blocks until no event has been outstanding for `quiet`, or until
    /// `timeout` elapses. Returns `true` on quiescence.
    ///
    /// Quiescence here means: every posted message/notification has been
    /// fully processed and no handler is mid-flight — with an event-driven
    /// protocol nothing can happen afterwards without external input.
    pub fn await_quiescence(&self, quiet: Duration, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut quiet_since: Option<Instant> = None;
        loop {
            if self.oracle.pending() == 0 {
                let since = *quiet_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= quiet {
                    // Zero pending means every Init ran (each is charged
                    // at spawn) and every posted event was processed, so
                    // no handler is mid-flight; new events can only come
                    // from handlers or from kills, which need `&mut
                    // self`. A full quiet window is genuinely final.
                    return true;
                }
            } else {
                quiet_since = None;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Stops all threads (orderly for survivors) and collects the final
    /// report.
    pub fn shutdown(mut self) -> LiveReport {
        for &id in self.workers.keys() {
            // Survivors get an orderly shutdown; killed nodes already
            // stopped via their flag (their inboxes were unregistered by
            // the kill, so this post is a no-op for them).
            self.oracle.post(id, Inbox::Shutdown);
        }
        let mut decisions = BTreeMap::new();
        let mut stats = BTreeMap::new();
        for (id, worker) in std::mem::take(&mut self.workers) {
            // A killed node's thread exits on its own: `kill` raised its
            // flag before returning, so the join below cannot hang.
            let (node_id, node, decision) = worker.handle.join().expect("node thread panicked");
            debug_assert_eq!(node_id, id);
            if !self.killed.contains(&id) {
                // Nodes that never did protocol work are omitted, like
                // the sim's report assembly and the sharded backend
                // (which never materializes them in the first place).
                if *node.stats() != ProtocolStats::default() {
                    stats.insert(id, *node.stats());
                }
                if let Some(d) = decision {
                    decisions.insert(id, d);
                }
            }
        }
        LiveReport {
            decisions,
            stats,
            killed: self.killed,
        }
    }
}

fn node_main(
    me: NodeId,
    mut node: LiveNode,
    inbox: Receiver<Inbox<LiveMsg>>,
    oracle: Arc<Oracle<LiveMsg>>,
    kill_flag: Arc<AtomicBool>,
) -> WorkerResult {
    let mut decision: Option<(View, NodeId)> = None;
    let actions = node.handle(Event::Init);
    execute(me, actions, &oracle, &mut decision);
    // Acknowledge the Init charge taken at spawn — only now may the
    // cluster count this node as idle.
    oracle.done();

    loop {
        if kill_flag.load(Ordering::SeqCst) {
            drain_killed_inbox(&inbox, &oracle);
            break;
        }
        match inbox.recv_timeout(Duration::from_millis(10)) {
            Ok(event) => {
                // Check the flag again after potentially waiting: a
                // crashed node must not process queued traffic.
                if kill_flag.load(Ordering::SeqCst) {
                    oracle.done();
                    drain_killed_inbox(&inbox, &oracle);
                    break;
                }
                let done = matches!(event, Inbox::Shutdown);
                match event {
                    Inbox::Proto { from, message } => {
                        let actions = node.handle(Event::Deliver { from, message });
                        execute(me, actions, &oracle, &mut decision);
                    }
                    Inbox::Crash(q) => {
                        let actions = node.handle(Event::Crash(q));
                        execute(me, actions, &oracle, &mut decision);
                    }
                    Inbox::Shutdown => {}
                }
                oracle.done();
                if done {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    (me, node, decision)
}

/// Drains a killed node's inbox, acknowledging every dropped event.
///
/// Every queued event was counted by `Oracle::post`, so exiting without
/// draining would leave `Oracle::pending` above zero forever and
/// [`LiveCluster::await_quiescence`] could only burn its timeout. The
/// kill-flag store precedes [`Oracle::kill`], which removes this node's
/// only sender under the oracle's state lock (`post` sends under the
/// same lock, so nothing can enqueue after the removal): once the
/// channel reports disconnection the queue is empty for good.
fn drain_killed_inbox<M>(inbox: &Receiver<Inbox<M>>, oracle: &Oracle<M>) {
    loop {
        match inbox.recv_timeout(Duration::from_millis(1)) {
            Ok(_) => oracle.done(),
            // Sender not removed yet (the kill is mid-flight): wait.
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

fn execute(
    me: NodeId,
    actions: Vec<Action<NodeId>>,
    oracle: &Oracle<LiveMsg>,
    decision: &mut Option<(View, NodeId)>,
) {
    for action in actions {
        match action {
            Action::Monitor(targets) => {
                for t in targets {
                    oracle.subscribe(me, t);
                }
            }
            Action::Multicast {
                recipients,
                message,
            } => {
                for to in recipients {
                    oracle.post(
                        to,
                        Inbox::Proto {
                            from: me,
                            message: message.clone(),
                        },
                    );
                }
            }
            Action::Decide { view, value } => {
                debug_assert!(decision.is_none(), "{me} decided twice");
                *decision = Some((view, value));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use precipice_graph::{path, torus, GridDims, Region};

    const QUIET: Duration = Duration::from_millis(150);
    const TIMEOUT: Duration = Duration::from_secs(20);

    #[test]
    fn live_path_agreement() {
        let mut cluster = LiveCluster::start(path(3), ProtocolConfig::default());
        cluster.kill(NodeId(1));
        assert!(
            cluster.await_quiescence(QUIET, TIMEOUT),
            "cluster must go quiescent"
        );
        let report = cluster.shutdown();
        assert_eq!(report.decisions.len(), 2);
        let d0 = &report.decisions[&NodeId(0)];
        let d2 = &report.decisions[&NodeId(2)];
        assert_eq!(d0, d2);
        assert_eq!(d0.0.region(), &Region::from_iter([NodeId(1)]));
        assert_eq!(d0.1, NodeId(0));
    }

    #[test]
    fn live_single_region_full_border_agreement() {
        // A single kill is schedule-independent: the whole border of {5}
        // must decide on exactly {5} with the same value.
        let mut cluster = LiveCluster::start(torus(GridDims::square(4)), ProtocolConfig::default());
        cluster.kill(NodeId(5));
        assert!(cluster.await_quiescence(QUIET, TIMEOUT));
        let report = cluster.shutdown();
        let region = Region::from_iter([NodeId(5)]);
        let first = report
            .decisions
            .values()
            .next()
            .expect("someone decided")
            .clone();
        assert_eq!(first.0.region(), &region);
        for (node, d) in &report.decisions {
            assert_eq!(d, &first, "{node} disagrees");
        }
        for b in first.0.border().iter() {
            assert!(
                report.decisions.contains_key(&b),
                "border node {b} must decide"
            );
        }
    }

    /// Two concurrent kills of adjacent nodes: the outcome is
    /// schedule-dependent (the border of {5} may agree before 6's crash
    /// is detectable — the paper's weak Progress explicitly allows the
    /// grown region to then starve), so assert the *specification*, not
    /// one outcome: accuracy, uniform agreement, convergence, progress.
    #[test]
    fn live_adjacent_kills_satisfy_spec() {
        let killed = [NodeId(5), NodeId(6)];
        let mut cluster = LiveCluster::start(torus(GridDims::square(4)), ProtocolConfig::default());
        for k in killed {
            cluster.kill(k);
        }
        assert!(cluster.await_quiescence(QUIET, TIMEOUT));
        assert_eq!(cluster.oracle().pending(), 0);
        let report = cluster.shutdown();

        // CD7 (cluster-level progress): at least one correct node decided.
        assert!(!report.decisions.is_empty(), "nobody decided");
        let decisions: Vec<_> = report.decisions.iter().collect();
        for (node, (view, _)) in &decisions {
            // CD2: decided views contain only killed nodes and include
            // the decider in their border.
            for member in view.region().iter() {
                assert!(
                    killed.contains(&member),
                    "{node} decided live node {member}"
                );
            }
            assert!(
                view.border().contains(**node),
                "{node} not on its view's border"
            );
        }
        // CD5 + CD6 over all pairs.
        for (i, (p, (vp, dp))) in decisions.iter().enumerate() {
            for (q, (vq, dq)) in decisions.iter().skip(i + 1) {
                if vp.region() == vq.region() {
                    assert_eq!(dp, dq, "{p} and {q} picked different values");
                } else {
                    assert!(
                        !vp.region().intersects(vq.region()),
                        "{p} ({vp}) and {q} ({vq}) hold partially overlapping views"
                    );
                }
            }
        }
    }

    #[test]
    fn distant_regions_decide_independently() {
        // {1} and {5} on a 7-path have disjoint borders: both
        // agreements must complete regardless of interleaving.
        let mut cluster = LiveCluster::start(path(7), ProtocolConfig::optimized());
        cluster.kill(NodeId(1));
        cluster.kill(NodeId(5));
        assert!(cluster.await_quiescence(QUIET, TIMEOUT));
        let report = cluster.shutdown();
        let r1 = Region::from_iter([NodeId(1)]);
        let r5 = Region::from_iter([NodeId(5)]);
        assert_eq!(report.decisions[&NodeId(0)].0.region(), &r1);
        assert_eq!(report.decisions[&NodeId(2)].0.region(), &r1);
        assert_eq!(report.decisions[&NodeId(4)].0.region(), &r5);
        assert_eq!(report.decisions[&NodeId(6)].0.region(), &r5);
        assert_eq!(report.decisions[&NodeId(0)].1, NodeId(0));
        assert_eq!(report.decisions[&NodeId(4)].1, NodeId(4));
    }

    /// Kills issued immediately after start race the node threads'
    /// `Init` handlers (some may not have been scheduled at all yet).
    /// Each Init is charged to the pending counter at spawn, so the
    /// quiet window cannot close until every subscription — and any
    /// crash notification it immediately triggers — has landed;
    /// otherwise quiescence could be declared with agreements still
    /// ahead.
    #[test]
    fn kill_racing_startup_still_reaches_full_agreement() {
        let mut cluster = LiveCluster::start(torus(GridDims::square(4)), ProtocolConfig::default());
        // No sleep: the kill lands before most threads ran Init.
        cluster.kill(NodeId(5));
        assert!(cluster.await_quiescence(QUIET, TIMEOUT));
        assert_eq!(cluster.oracle().pending(), 0);
        let report = cluster.shutdown();
        let region = Region::from_iter([NodeId(5)]);
        assert_eq!(report.decisions.len(), 4, "whole border must decide");
        for (node, (view, _)) in &report.decisions {
            assert_eq!(view.region(), &region, "{node} decided a wrong region");
        }
    }

    /// Regression test for the pending-counter leak: events posted to a
    /// node before its kill used to die unacknowledged with the killed
    /// thread, so `Oracle::pending` never returned to zero and
    /// `await_quiescence` could only burn its full timeout.
    #[test]
    fn kill_under_load_quiesces_without_pending_leak() {
        // A connected 6-node blob crashes at once on an 8x8 torus; its
        // ~12-node border immediately floods agreement traffic. Node 26
        // sits on that border: killing it a moment later drops it with
        // proposals still queued in (and in flight toward) its inbox.
        let graph = torus(GridDims::square(8));
        let blob = [19u32, 20, 27, 28, 35, 36].map(NodeId);
        let x = NodeId(26);
        let mut cluster = LiveCluster::start(graph, ProtocolConfig::default());
        for p in blob {
            cluster.kill(p);
        }
        // Let the border agreement get into full flight before the kill.
        std::thread::sleep(Duration::from_millis(1));
        cluster.kill(x);
        let started = Instant::now();
        assert!(
            cluster.await_quiescence(QUIET, TIMEOUT),
            "cluster must settle after a kill under load"
        );
        assert!(
            started.elapsed() < TIMEOUT / 2,
            "quiescence took {:?} — pending-counter leak?",
            started.elapsed()
        );
        assert_eq!(cluster.oracle().pending(), 0);
        let report = cluster.shutdown();
        assert_eq!(report.killed.len(), blob.len() + 1);
        for (node, (view, _)) in &report.decisions {
            for member in view.region().iter() {
                assert!(
                    member == x || blob.contains(&member),
                    "{node} decided live node {member}"
                );
            }
        }
    }

    #[test]
    fn shutdown_without_kills_is_clean() {
        let cluster = LiveCluster::start(path(4), ProtocolConfig::default());
        assert!(cluster.await_quiescence(QUIET, TIMEOUT));
        let report = cluster.shutdown();
        assert!(report.decisions.is_empty());
        assert!(report.killed.is_empty());
        // Nobody did protocol work, so nobody contributes stats — same
        // report a sharded run (which never even activates them) gives.
        assert!(report.stats.is_empty());
    }
}
