//! The sharded event-loop runtime: `W` worker shards instead of one
//! thread per node.
//!
//! The thread-per-node backend ([`LiveCluster`](crate::LiveCluster))
//! tops out around thousands of nodes — every node costs an OS thread
//! and an unbounded channel *up front*, whether the scenario ever
//! touches it or not. This module replaces that with the design the sim
//! side has used since the footprint-proportional rework:
//!
//! - **Disjoint node ranges.** The id space of one shared
//!   [`Arc<Graph>`] (owned or mapped `.pcsr`) is cut into `W` contiguous
//!   ranges; shard `i` owns range `i` and is the only thread that ever
//!   holds protocol state for those nodes.
//! - **Lazy activation.** A node materializes (policy built, `Init`
//!   run) the first time an event addressed to it is popped — exactly
//!   like the sim's lazy process table. A 10⁶-node topology with one
//!   crashed node allocates state for the border only.
//! - **Bounded MPSC rings.** Cross-shard traffic flows over one
//!   [`Ring`] per shard (see [`ring`](crate::ring)) instead of one
//!   channel per node.
//! - **Per-shard pending counters.** The kill-switch quiescence oracle
//!   is re-expressed as one atomic counter per shard: a post charges
//!   the *target's* shard before the event is enqueued, the owning
//!   shard acknowledges after the handler (and everything it posted)
//!   is done. All counters at zero for a quiet window ⇒ quiescent.
//!
//! Failure detection keeps the graph-backed semantics of the sim's
//! `FailureDetector::with_static_graph`: every node is implicitly
//! subscribed to its graph neighbours (so `Init`'s monitor of the
//! neighbourhood is a no-op and never forces activation), dynamic
//! monitors are recorded only for non-neighbours, and a kill notifies
//! `neighbours(q) ∪ dynamic(q)` exactly once per (observer, target)
//! pair, in ascending node order.

use std::collections::{btree_map, BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use precipice_core::{
    Action, CliffEdgeNode, DecisionPolicy, Event, Message, NodeIdValuePolicy, ProtocolConfig,
    ProtocolStats, View,
};
use precipice_graph::{Graph, NodeId};

use crate::cluster::LiveReport;
use crate::gate::Gate;
use crate::ring::{Pop, Ring};

/// Capacity of each shard's bounded ring; bursts beyond it spill (see
/// [`ring`](crate::ring)).
const RING_CAPACITY: usize = 1024;

/// How long an idle shard sleeps in `pop` before re-checking its ring.
const IDLE_TICK: Duration = Duration::from_millis(10);

/// An event in flight towards the node that must handle it.
#[derive(Debug)]
pub(crate) enum ShardEvent<V> {
    /// A protocol message from `from` to `to`.
    Deliver {
        /// Destination node.
        to: NodeId,
        /// Sending node.
        from: NodeId,
        /// The protocol message.
        message: Message<V>,
    },
    /// The failure detector tells `to` that `crashed` crashed.
    Notify {
        /// Destination node.
        to: NodeId,
        /// The crashed node being reported.
        crashed: NodeId,
    },
}

impl<V> ShardEvent<V> {
    pub(crate) fn to(&self) -> NodeId {
        match self {
            ShardEvent::Deliver { to, .. } | ShardEvent::Notify { to, .. } => *to,
        }
    }
}

/// Failure-detector bookkeeping, shared by all shards under one lock.
#[derive(Debug, Default)]
struct FdState {
    /// Nodes killed so far.
    crashed: BTreeSet<NodeId>,
    /// Dynamic (non-neighbour) subscriptions: target → observers.
    dynamic: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// (observer, target) pairs already notified — exactly-once guard.
    notified: BTreeSet<(NodeId, NodeId)>,
}

/// Transport counters, kept as atomics and snapshotted on demand.
#[derive(Debug, Default)]
struct Counters {
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    notifications: AtomicU64,
    activations: AtomicU64,
    events: AtomicU64,
}

/// A plain snapshot of the router's transport accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterCounters {
    /// Protocol messages accepted for delivery.
    pub messages_sent: u64,
    /// Serialized bytes of those messages.
    pub bytes_sent: u64,
    /// Protocol messages actually handled by a live node.
    pub delivered: u64,
    /// Events dropped because their target was crashed.
    pub dropped: u64,
    /// Crash notifications issued.
    pub notifications: u64,
    /// Nodes activated on demand.
    pub activations: u64,
    /// Total events handled by shard loops.
    pub events: u64,
}

/// The shared heart of the sharded runtime: ring addressing, quiescence
/// accounting and graph-backed failure detection.
///
/// Lock ordering: `fd` before the gate's queue lock; ring mutexes are
/// leaves. Nothing ever takes `fd` while holding a ring or gate lock.
#[derive(Debug)]
pub(crate) struct Router<V> {
    graph: Arc<Graph>,
    shards: usize,
    /// Nodes per shard range (last shard takes the remainder).
    range: usize,
    rings: Vec<Arc<Ring<ShardEvent<V>>>>,
    pending: Vec<AtomicU64>,
    fd: Mutex<FdState>,
    /// When set, posts are parked here instead of entering the rings —
    /// the delivery gate for schedule exploration.
    gate: Option<Arc<Gate<V>>>,
    /// Logical release clock; only advanced by a gate controller.
    step: AtomicU64,
    counters: Counters,
}

impl<V: precipice_core::WireSize> Router<V> {
    fn new(graph: Arc<Graph>, shards: usize, gate: Option<Arc<Gate<V>>>) -> Arc<Self> {
        let shards = shards.max(1);
        let range = graph.len().div_ceil(shards).max(1);
        Arc::new(Router {
            graph,
            shards,
            range,
            rings: (0..shards)
                .map(|_| Arc::new(Ring::new(RING_CAPACITY)))
                .collect(),
            pending: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            fd: Mutex::new(FdState::default()),
            gate,
            step: AtomicU64::new(0),
            counters: Counters::default(),
        })
    }

    pub(crate) fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// Which shard owns `node`: contiguous ranges of the id space.
    pub(crate) fn shard_of(&self, node: NodeId) -> usize {
        ((node.0 as usize) / self.range).min(self.shards - 1)
    }

    pub(crate) fn is_crashed(&self, node: NodeId) -> bool {
        self.fd.lock().expect("fd lock").crashed.contains(&node)
    }

    /// Routes `event` towards its owner: charges the target shard and
    /// enqueues, or parks it in the gate when one is installed. Called
    /// with the fd lock held, so a concurrent kill cannot slip between
    /// the liveness check and the enqueue.
    fn route(&self, event: ShardEvent<V>) {
        if let Some(gate) = &self.gate {
            gate.park(event);
        } else {
            self.release(event);
        }
    }

    /// Sends `event` into its owner's ring for real, charging the
    /// shard's pending counter first (quiescence must never observe the
    /// window between enqueue and charge).
    pub(crate) fn release(&self, event: ShardEvent<V>) {
        let shard = self.shard_of(event.to());
        self.pending[shard].fetch_add(1, Ordering::SeqCst);
        self.rings[shard].push(event);
    }

    /// A protocol message from `from` to `to`; dropped if `to` is dead.
    fn deliver(&self, from: NodeId, to: NodeId, message: Message<V>) {
        let fd = self.fd.lock().expect("fd lock");
        if fd.crashed.contains(&to) {
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.counters.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_sent
            .fetch_add(message.wire_size() as u64, Ordering::Relaxed);
        self.route(ShardEvent::Deliver { to, from, message });
        drop(fd);
    }

    /// `observer` asks to monitor `target` (a dynamic `Monitor` action).
    ///
    /// Graph neighbours are implicitly covered and recorded nowhere; a
    /// non-neighbour target is stored. If the target is already dead
    /// and this pair was never notified, the notification fires now.
    fn monitor(&self, observer: NodeId, target: NodeId) {
        let mut fd = self.fd.lock().expect("fd lock");
        if fd.crashed.contains(&target) {
            if fd.notified.insert((observer, target)) {
                self.counters.notifications.fetch_add(1, Ordering::Relaxed);
                self.route(ShardEvent::Notify {
                    to: observer,
                    crashed: target,
                });
            }
            return;
        }
        if self.graph.has_edge(observer, target) {
            return;
        }
        fd.dynamic.entry(target).or_default().insert(observer);
    }

    /// Marks `q` crashed and notifies `neighbours(q) ∪ dynamic(q)` in
    /// ascending order, exactly once per pair. Returns `false` if `q`
    /// was already dead. Notifications to observers that are themselves
    /// dead are enqueued and dropped at delivery, mirroring the sim.
    pub(crate) fn kill(&self, q: NodeId) -> bool {
        let mut fd = self.fd.lock().expect("fd lock");
        if !fd.crashed.insert(q) {
            return false;
        }
        let dynamic = fd.dynamic.remove(&q).unwrap_or_default();
        let mut observers: Vec<NodeId> = self
            .graph
            .neighbors(q)
            .iter()
            .copied()
            .chain(dynamic)
            .collect();
        observers.sort_unstable();
        observers.dedup();
        for obs in observers {
            if fd.notified.insert((obs, q)) {
                self.counters.notifications.fetch_add(1, Ordering::Relaxed);
                self.route(ShardEvent::Notify {
                    to: obs,
                    crashed: q,
                });
            }
        }
        true
    }

    /// Acknowledges one fully-handled (or dropped) event on `shard`.
    fn done(&self, shard: usize) {
        let before = self.pending[shard].fetch_sub(1, Ordering::SeqCst);
        debug_assert!(before > 0, "pending counter underflow on shard {shard}");
    }

    /// Outstanding events across all shards.
    pub(crate) fn pending_sum(&self) -> u64 {
        self.pending.iter().map(|p| p.load(Ordering::SeqCst)).sum()
    }

    fn shard_pending(&self) -> Vec<u64> {
        self.pending
            .iter()
            .map(|p| p.load(Ordering::SeqCst))
            .collect()
    }

    /// The logical release clock (0 outside gated runs).
    fn step(&self) -> u64 {
        self.step.load(Ordering::SeqCst)
    }

    /// Advances the release clock (gate controller only).
    pub(crate) fn bump_step(&self) -> u64 {
        self.step.fetch_add(1, Ordering::SeqCst) + 1
    }

    fn snapshot(&self) -> RouterCounters {
        RouterCounters {
            messages_sent: self.counters.messages_sent.load(Ordering::Relaxed),
            bytes_sent: self.counters.bytes_sent.load(Ordering::Relaxed),
            delivered: self.counters.delivered.load(Ordering::Relaxed),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            notifications: self.counters.notifications.load(Ordering::Relaxed),
            activations: self.counters.activations.load(Ordering::Relaxed),
            events: self.counters.events.load(Ordering::Relaxed),
        }
    }
}

/// A decision as the shards record it: view, value, release step.
type DecisionCell<V> = BTreeMap<NodeId, (View, V, u64)>;

/// A running sharded cluster over one shared topology.
///
/// Generic over the [`DecisionPolicy`] so [`Scenario::exec`] policies
/// carry over; plain [`ShardedCluster::start`] gives the default
/// coordinator-election policy. See the [module docs](self) for the
/// design and the [crate docs](crate) for an end-to-end example.
pub struct ShardedCluster<P: DecisionPolicy = NodeIdValuePolicy> {
    router: Arc<Router<P::Value>>,
    handles: Vec<JoinHandle<ShardNodes<P>>>,
    decisions: Arc<Mutex<DecisionCell<P::Value>>>,
    killed: BTreeSet<NodeId>,
}

type ShardNodes<P> = BTreeMap<NodeId, CliffEdgeNode<Arc<Graph>, P>>;

impl<P: DecisionPolicy> std::fmt::Debug for ShardedCluster<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCluster")
            .field("nodes", &self.router.graph.len())
            .field("shards", &self.router.shards)
            .field("killed", &self.killed)
            .finish()
    }
}

impl ShardedCluster<NodeIdValuePolicy> {
    /// Starts `shards` worker shards over `graph` with the default
    /// coordinator-election policy. No node state is allocated until a
    /// node first receives an event.
    pub fn start(graph: Graph, config: ProtocolConfig, shards: usize) -> Self {
        Self::start_shared(Arc::new(graph), config, shards)
    }

    /// [`start`](Self::start) over an already-shared topology — the
    /// entry point for mapped `.pcsr` graphs, where cloning the `Arc`
    /// is the whole point.
    pub fn start_shared(graph: Arc<Graph>, config: ProtocolConfig, shards: usize) -> Self {
        Self::start_with(graph, config, shards, |_me| NodeIdValuePolicy)
    }
}

impl<P> ShardedCluster<P>
where
    P: DecisionPolicy + Send + 'static,
    P::Value: Send + Sync,
{
    /// Starts the cluster with a per-node policy factory (the exec
    /// API's `decide_with` hook). The factory runs on shard threads,
    /// serialized by a lock, the first time each node activates.
    pub fn start_with<F>(
        graph: Arc<Graph>,
        config: ProtocolConfig,
        shards: usize,
        factory: F,
    ) -> Self
    where
        F: FnMut(NodeId) -> P + Send + 'static,
    {
        Self::launch(graph, config, shards, factory, None)
    }

    pub(crate) fn launch<F>(
        graph: Arc<Graph>,
        config: ProtocolConfig,
        shards: usize,
        factory: F,
        gate: Option<Arc<Gate<P::Value>>>,
    ) -> Self
    where
        F: FnMut(NodeId) -> P + Send + 'static,
    {
        let router = Router::new(graph, shards, gate);
        let decisions: Arc<Mutex<DecisionCell<P::Value>>> = Arc::new(Mutex::new(BTreeMap::new()));
        let factory = Arc::new(Mutex::new(factory));
        let handles = (0..router.shards)
            .map(|shard| {
                let router = Arc::clone(&router);
                let factory = Arc::clone(&factory);
                let decisions = Arc::clone(&decisions);
                std::thread::Builder::new()
                    .name(format!("precipice-shard-{shard}"))
                    .spawn(move || shard_main(shard, router, factory, config, decisions))
                    .expect("spawn shard thread")
            })
            .collect();
        ShardedCluster {
            router,
            handles,
            decisions,
            killed: BTreeSet::new(),
        }
    }

    /// The shared topology.
    pub fn graph(&self) -> &Arc<Graph> {
        self.router.graph()
    }

    /// Worker shard count.
    pub fn shards(&self) -> usize {
        self.router.shards
    }

    /// Induces the crash of `node`: queued and future events addressed
    /// to it are dropped, and its observers are notified.
    pub fn kill(&mut self, node: NodeId) {
        if self.killed.insert(node) {
            self.router.kill(node);
        }
    }

    /// Nodes killed so far.
    pub fn killed(&self) -> &BTreeSet<NodeId> {
        &self.killed
    }

    /// Outstanding (posted but not yet fully handled) events.
    pub fn pending(&self) -> u64 {
        self.router.pending_sum()
    }

    /// Outstanding events per shard.
    pub fn shard_pending(&self) -> Vec<u64> {
        self.router.shard_pending()
    }

    /// Nodes activated on demand so far — the live analogue of the
    /// sim's footprint metric. Never-activated nodes hold no state.
    pub fn activated(&self) -> u64 {
        self.router.counters.activations.load(Ordering::Relaxed)
    }

    /// Events that overflowed a shard ring into its spill lane.
    pub fn spilled(&self) -> u64 {
        self.router.rings.iter().map(|r| r.spilled()).sum()
    }

    /// Transport accounting so far.
    pub fn counters(&self) -> RouterCounters {
        self.router.snapshot()
    }

    /// The decision of `node`, if it has decided (live read — valid
    /// mid-run, used by `precipice serve`'s `read` command).
    pub fn decision_of(&self, node: NodeId) -> Option<(View, P::Value)> {
        self.decisions
            .lock()
            .expect("decisions lock")
            .get(&node)
            .map(|(view, value, _)| (view.clone(), value.clone()))
    }

    /// Snapshot of all decisions so far (killed nodes excluded).
    pub fn decisions_snapshot(&self) -> BTreeMap<NodeId, (View, P::Value)> {
        self.decisions
            .lock()
            .expect("decisions lock")
            .iter()
            .filter(|(node, _)| !self.killed.contains(node))
            .map(|(node, (view, value, _))| (*node, (view.clone(), value.clone())))
            .collect()
    }

    /// Advances the gated release clock (gate controller only).
    pub(crate) fn bump_step(&self) -> u64 {
        self.router.bump_step()
    }

    /// Releases one parked event into the real rings (gate controller
    /// only).
    pub(crate) fn release_gated(&self, event: ShardEvent<P::Value>) {
        self.router.release(event);
    }

    /// Release-clock stamps of all decisions so far (killed excluded).
    pub(crate) fn decision_steps(&self) -> BTreeMap<NodeId, u64> {
        self.decisions
            .lock()
            .expect("decisions lock")
            .iter()
            .filter(|(node, _)| !self.killed.contains(node))
            .map(|(node, (_, _, step))| (*node, *step))
            .collect()
    }

    /// Blocks until no event has been outstanding for `quiet`, or until
    /// `timeout` elapses. Returns `true` on quiescence.
    ///
    /// Same contract as the thread-per-node oracle: a post charges the
    /// target shard *before* enqueueing and the shard acknowledges only
    /// after the handler (and everything it posted) is done, so all
    /// counters at zero means no handler is mid-flight; a full quiet
    /// window with no kills in between is genuinely final.
    pub fn await_quiescence(&self, quiet: Duration, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut quiet_since: Option<Instant> = None;
        loop {
            if self.router.pending_sum() == 0 {
                let since = *quiet_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= quiet {
                    return true;
                }
            } else {
                quiet_since = None;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Stops all shards (draining their rings first) and collects the
    /// final report. Killed nodes and never-touched nodes contribute no
    /// stats; killed nodes' decisions are dropped with them.
    pub fn shutdown(mut self) -> LiveReport<P::Value> {
        for ring in &self.router.rings {
            ring.close();
        }
        let mut stats = BTreeMap::new();
        for handle in self.handles.drain(..) {
            for (id, node) in handle.join().expect("shard thread panicked") {
                if !self.killed.contains(&id) && *node.stats() != ProtocolStats::default() {
                    stats.insert(id, *node.stats());
                }
            }
        }
        let decisions = self
            .decisions
            .lock()
            .expect("decisions lock")
            .iter()
            .filter(|(node, _)| !self.killed.contains(node))
            .map(|(node, (view, value, _))| (*node, (view.clone(), value.clone())))
            .collect();
        LiveReport {
            decisions,
            stats,
            killed: self.killed,
        }
    }
}

/// One shard's event loop: pop, activate on demand, handle, execute the
/// resulting actions, acknowledge.
fn shard_main<P, F>(
    shard: usize,
    router: Arc<Router<P::Value>>,
    factory: Arc<Mutex<F>>,
    config: ProtocolConfig,
    decisions: Arc<Mutex<DecisionCell<P::Value>>>,
) -> ShardNodes<P>
where
    P: DecisionPolicy,
    F: FnMut(NodeId) -> P,
{
    let ring = Arc::clone(&router.rings[shard]);
    let mut nodes: ShardNodes<P> = BTreeMap::new();
    loop {
        match ring.pop(IDLE_TICK) {
            Pop::Item(event) => {
                handle_event(event, &router, &factory, config, &decisions, &mut nodes);
                router.done(shard);
            }
            Pop::TimedOut => continue,
            Pop::Closed => break,
        }
    }
    nodes
}

fn handle_event<P, F>(
    event: ShardEvent<P::Value>,
    router: &Router<P::Value>,
    factory: &Mutex<F>,
    config: ProtocolConfig,
    decisions: &Mutex<DecisionCell<P::Value>>,
    nodes: &mut ShardNodes<P>,
) where
    P: DecisionPolicy,
    F: FnMut(NodeId) -> P,
{
    let to = event.to();
    router.counters.events.fetch_add(1, Ordering::Relaxed);
    if router.is_crashed(to) {
        router.counters.dropped.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let node = match nodes.entry(to) {
        btree_map::Entry::Occupied(entry) => entry.into_mut(),
        btree_map::Entry::Vacant(entry) => {
            // First event for this node: build it and run Init before
            // the event itself — the protocol requires Init first, and
            // its neighbourhood monitor is free under graph-backed FD.
            router.counters.activations.fetch_add(1, Ordering::Relaxed);
            let policy = (factory.lock().expect("policy factory lock"))(to);
            let mut node = CliffEdgeNode::new(to, Arc::clone(router.graph()), policy, config);
            let init_actions = node.handle(Event::Init);
            let node = entry.insert(node);
            execute(to, init_actions, router, decisions);
            node
        }
    };
    let actions = match event {
        ShardEvent::Deliver { from, message, .. } => {
            router.counters.delivered.fetch_add(1, Ordering::Relaxed);
            node.handle(Event::Deliver { from, message })
        }
        ShardEvent::Notify { crashed, .. } => node.handle(Event::Crash(crashed)),
    };
    execute(to, actions, router, decisions);
}

fn execute<V: Clone + precipice_core::WireSize>(
    me: NodeId,
    actions: Vec<Action<V>>,
    router: &Router<V>,
    decisions: &Mutex<DecisionCell<V>>,
) {
    for action in actions {
        match action {
            Action::Monitor(targets) => {
                for target in targets {
                    router.monitor(me, target);
                }
            }
            Action::Multicast {
                recipients,
                message,
            } => {
                for to in recipients {
                    router.deliver(me, to, message.clone());
                }
            }
            Action::Decide { view, value } => {
                let step = router.step();
                let previous = decisions
                    .lock()
                    .expect("decisions lock")
                    .insert(me, (view, value, step));
                debug_assert!(previous.is_none(), "{me} decided twice");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use precipice_graph::{path, torus, GridDims, Region};

    const QUIET: Duration = Duration::from_millis(150);
    const TIMEOUT: Duration = Duration::from_secs(20);

    fn run_one(graph: Graph, shards: usize, kills: &[NodeId]) -> (LiveReport, u64) {
        let mut cluster = ShardedCluster::start(graph, ProtocolConfig::default(), shards);
        for &k in kills {
            cluster.kill(k);
        }
        assert!(
            cluster.await_quiescence(QUIET, TIMEOUT),
            "must go quiescent"
        );
        assert_eq!(cluster.pending(), 0);
        let activated = cluster.activated();
        (cluster.shutdown(), activated)
    }

    #[test]
    fn path_agreement_single_shard() {
        let (report, _) = run_one(path(3), 1, &[NodeId(1)]);
        assert_eq!(report.decisions.len(), 2);
        let region: Region = [NodeId(1)].into_iter().collect();
        for d in report.decisions.values() {
            assert_eq!(d.0.region(), &region);
            assert_eq!(d.1, NodeId(0), "smallest border id elected");
        }
    }

    #[test]
    fn torus_agreement_many_shards() {
        let (report, activated) = run_one(torus(GridDims::square(4)), 4, &[NodeId(9)]);
        let region: Region = [NodeId(9)].into_iter().collect();
        let border = report.decisions.keys().copied().collect::<Vec<_>>();
        assert_eq!(border.len(), 4, "whole border decides");
        for d in report.decisions.values() {
            assert_eq!(d.0.region(), &region);
        }
        // Only the border ever saw an event.
        assert_eq!(activated, 4);
        assert_eq!(report.stats.len(), 4);
    }

    #[test]
    fn never_activated_nodes_allocate_no_state() {
        // The spawn-on-demand regression: a 1024-node torus with one
        // kill must only materialize the 4 border nodes — state for
        // the other 1019 is never allocated anywhere.
        let mut cluster =
            ShardedCluster::start(torus(GridDims::square(32)), ProtocolConfig::default(), 3);
        assert_eq!(cluster.activated(), 0, "startup activates nothing");
        assert_eq!(cluster.pending(), 0, "startup posts nothing");
        cluster.kill(NodeId(100));
        assert!(cluster.await_quiescence(QUIET, TIMEOUT));
        assert_eq!(cluster.activated(), 4);
        let report = cluster.shutdown();
        assert_eq!(report.stats.len(), 4, "stats only for touched nodes");
        assert_eq!(report.decisions.len(), 4);
    }

    #[test]
    fn quiescent_immediately_without_kills() {
        let cluster =
            ShardedCluster::start(torus(GridDims::square(5)), ProtocolConfig::default(), 2);
        assert!(cluster.await_quiescence(Duration::from_millis(20), TIMEOUT));
        let report = cluster.shutdown();
        assert!(report.decisions.is_empty());
        assert!(report.stats.is_empty());
    }

    #[test]
    fn adjacent_kills_converge_to_merged_region() {
        let (report, _) = run_one(torus(GridDims::square(5)), 2, &[NodeId(12), NodeId(13)]);
        // Every decision must be internally consistent: decider on the
        // border of its region, region within the killed set.
        let killed: Region = [NodeId(12), NodeId(13)].into_iter().collect();
        assert!(!report.decisions.is_empty());
        for (n, (view, _)) in &report.decisions {
            assert!(view.region().iter().all(|q| killed.contains(q)));
            assert!(view.border().contains(*n), "decider {n} on its border");
        }
    }

    #[test]
    fn distant_regions_decide_independently() {
        let (report, _) = run_one(path(9), 4, &[NodeId(2), NodeId(6)]);
        assert_eq!(report.decisions.len(), 4);
        let r2: Region = [NodeId(2)].into_iter().collect();
        let r6: Region = [NodeId(6)].into_iter().collect();
        assert_eq!(report.decisions[&NodeId(1)].0.region(), &r2);
        assert_eq!(report.decisions[&NodeId(3)].0.region(), &r2);
        assert_eq!(report.decisions[&NodeId(5)].0.region(), &r6);
        assert_eq!(report.decisions[&NodeId(7)].0.region(), &r6);
    }

    #[test]
    fn custom_policy_runs_through_factory() {
        use precipice_core::ConstPolicy;
        let mut cluster =
            ShardedCluster::start_with(Arc::new(path(3)), ProtocolConfig::default(), 2, |_me| {
                ConstPolicy(7u32)
            });
        cluster.kill(NodeId(1));
        assert!(cluster.await_quiescence(QUIET, TIMEOUT));
        let report = cluster.shutdown();
        assert_eq!(report.decisions.len(), 2);
        for (_, value) in report.decisions.values() {
            assert_eq!(*value, 7);
        }
    }

    #[test]
    fn kill_of_never_activated_node_still_notifies_border() {
        // Killing a node that never ran: its neighbours still learn of
        // it (graph-backed FD resolves observers from the topology, not
        // from subscriptions).
        let (report, _) = run_one(torus(GridDims::square(6)), 6, &[NodeId(14)]);
        assert_eq!(report.decisions.len(), 4);
    }

    #[test]
    fn shards_clamped_to_at_least_one() {
        let (report, _) = run_one(path(3), 0, &[NodeId(1)]);
        assert_eq!(report.decisions.len(), 2);
    }
}
