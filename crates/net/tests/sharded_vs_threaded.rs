//! Differential suite: the sharded event-loop runtime against the
//! thread-per-node reference backend.
//!
//! Both backends run the identical sans-io state machine, so on
//! scenarios whose observables are schedule-independent (single kills,
//! disjoint distant kills, faithful config) the final
//! [`LiveReport`]s — decisions, stats, killed set — must be **equal**,
//! across backends and across shard counts. This is the gate that let
//! the sharded runtime replace thread-per-node as the default backend
//! while keeping the old one as the executable reference.
//!
//! The suite also hosts the footprint headline: a 10⁶-node mapped torus
//! served by one process, answering a full crash → agreement → read
//! round-trip while activating only the four border nodes.

use std::time::{Duration, Instant};

use precipice_core::ProtocolConfig;
use precipice_graph::{path, stream_torus, torus, GridDims, NodeId};
use precipice_net::{gated_run, LiveCluster, LiveReport, ServeSession, ShardedCluster};

const QUIET: Duration = Duration::from_millis(200);
// Generous: these tests share the machine with the rest of the suite.
const TIMEOUT: Duration = Duration::from_secs(120);

/// Runs the scenario on the thread-per-node reference backend.
fn threaded(graph: precipice_graph::Graph, config: ProtocolConfig, kills: &[NodeId]) -> LiveReport {
    let mut cluster = LiveCluster::start(graph, config);
    for &k in kills {
        cluster.kill(k);
    }
    assert!(cluster.await_quiescence(QUIET, TIMEOUT), "threaded drain");
    cluster.shutdown()
}

/// Runs the scenario on the sharded runtime with `shards` workers.
fn sharded(
    graph: precipice_graph::Graph,
    config: ProtocolConfig,
    kills: &[NodeId],
    shards: usize,
) -> LiveReport {
    let mut cluster = ShardedCluster::start(graph, config, shards);
    for &k in kills {
        cluster.kill(k);
    }
    assert!(cluster.await_quiescence(QUIET, TIMEOUT), "sharded drain");
    cluster.shutdown()
}

/// Single kill on a torus: the canonical schedule-independent scenario.
/// Decisions, stats and the killed set must agree byte-for-byte between
/// the reference backend and the sharded runtime at 1 and 4 shards.
#[test]
fn single_kill_reports_are_identical_across_backends() {
    for config in [ProtocolConfig::faithful(), ProtocolConfig::optimized()] {
        let kills = [NodeId(9)];
        let reference = threaded(torus(GridDims::square(4)), config, &kills);
        let one = sharded(torus(GridDims::square(4)), config, &kills, 1);
        let four = sharded(torus(GridDims::square(4)), config, &kills, 4);
        assert_eq!(reference, one, "threaded vs 1 shard ({config:?})");
        assert_eq!(reference, four, "threaded vs 4 shards ({config:?})");
        assert_eq!(reference.decisions.len(), 4);
    }
}

/// Two distant kills on a path: two independent agreement instances,
/// still schedule-independent in every observable.
#[test]
fn distant_kills_reports_are_identical_across_backends() {
    let kills = [NodeId(2), NodeId(6)];
    let config = ProtocolConfig::faithful();
    let reference = threaded(path(9), config, &kills);
    let one = sharded(path(9), config, &kills, 1);
    let four = sharded(path(9), config, &kills, 4);
    assert_eq!(reference, one);
    assert_eq!(reference, four);
    assert_eq!(reference.decisions.len(), 4, "both borders decide");
    assert_eq!(
        reference.killed.iter().copied().collect::<Vec<_>>(),
        kills.to_vec()
    );
}

/// Adjacent kills race region merging, so free-running stats may differ
/// — but the *gated* runs are bit-deterministic in (scenario, seed) and
/// shard-count independent, which is what `check --backend live` rests
/// on.
#[test]
fn gated_adjacent_kills_are_shard_count_independent() {
    let kills = [NodeId(5), NodeId(6)];
    for seed in [0, 1, 7] {
        let a = gated_run(
            std::sync::Arc::new(torus(GridDims::square(4))),
            ProtocolConfig::faithful(),
            1,
            &kills,
            seed,
        );
        let b = gated_run(
            std::sync::Arc::new(torus(GridDims::square(4))),
            ProtocolConfig::faithful(),
            4,
            &kills,
            seed,
        );
        assert_eq!(a.report, b.report, "seed {seed}");
        assert_eq!(a.order_hash, b.order_hash, "seed {seed}");
        assert_eq!(a.message_pairs, b.message_pairs, "seed {seed}");
        assert_eq!(a.crash_steps, b.crash_steps, "seed {seed}");
        assert_eq!(a.decision_steps, b.decision_steps, "seed {seed}");
    }
}

/// The serve headline: one process hosts a 10⁶-node torus from a mapped
/// `.pcsr` store and answers a full crash → agreement → read round-trip,
/// activating only the crashed node's border. Wall-capped: the whole
/// round-trip (including the streamed graph build) must finish well
/// inside the suite budget.
#[test]
fn serve_hosts_a_million_node_mapped_torus() {
    let dir = std::env::temp_dir().join("precipice-serve-smoke");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let pcsr = dir.join("torus-1m.pcsr");
    let t0 = Instant::now();
    stream_torus(
        GridDims {
            width: 1000,
            height: 1000,
        },
        &pcsr,
    )
    .expect("stream 10^6-node torus");

    let mut session = ServeSession::new(2);
    let open = session.handle_line(&format!(
        "{{\"cmd\":\"open\",\"id\":\"big\",\"topology\":\"pcsr:{}\"}}",
        pcsr.display()
    ));
    assert!(open.contains("\"ok\":true"), "open: {open}");
    assert!(open.contains("\"nodes\":1000000"), "open: {open}");

    // Kill the center node (500, 500); its torus border is the 4
    // neighbours.
    let crash = session.handle_line("{\"cmd\":\"crash\",\"id\":\"big\",\"node\":500500}");
    assert!(crash.contains("\"ok\":true"), "crash: {crash}");
    let awaited = session.handle_line("{\"cmd\":\"await\",\"id\":\"big\",\"timeout_ms\":60000}");
    assert!(awaited.contains("\"quiescent\":true"), "await: {awaited}");

    let read = session.handle_line("{\"cmd\":\"read\",\"id\":\"big\",\"node\":499500}");
    assert!(read.contains("\"decided\":true"), "read: {read}");
    assert!(read.contains("\"region\":[500500]"), "read: {read}");
    assert!(read.contains("\"value\":499500"), "read: {read}");

    // Footprint: of 10^6 logical nodes, only the 4 border nodes ever
    // materialized.
    let status = session.handle_line("{\"cmd\":\"status\",\"id\":\"big\"}");
    assert!(status.contains("\"activated\":4"), "status: {status}");

    let bye = session.handle_line("{\"cmd\":\"shutdown\"}");
    assert!(bye.contains("\"consistent\":true"), "shutdown: {bye}");
    assert!(session.finished());

    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(90),
        "round-trip took {elapsed:?}; footprint-proportional serving must not scale with n"
    );
    let _ = std::fs::remove_file(&pcsr);
}
