//! Offline, API-compatible subset of the `rand` crate (0.8 API) so the
//! workspace builds without network access. Only the surface actually
//! used by the workspace is provided: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! high-quality, and fully deterministic for a given seed, which is the
//! property every experiment in this repository leans on. The streams
//! differ from upstream `rand`'s `StdRng` (ChaCha12), which is fine:
//! nothing in the workspace pins golden values of the stream itself.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that a [`Rng`] can produce through [`Rng::gen`] (upstream's
/// `Standard` distribution).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from (upstream's
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on an empty
    /// range, matching upstream.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// The subset of upstream's `Rng` used by the workspace.
pub trait Rng {
    /// The raw 64-bit output all other draws derive from.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Draws a value of type `T` (upstream's `Standard` distribution).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::from_rng(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (upstream's trait, reduced to the one
/// constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic stand-in for upstream's `StdRng`: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// Slice element type.
        type Item;

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!([1u32].choose(&mut rng) == Some(&1));
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
    }
}
