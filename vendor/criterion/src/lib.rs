//! Offline, API-compatible subset of the `criterion` crate so the
//! workspace's benches compile and run without network access. It keeps
//! criterion's bench-authoring surface (`criterion_group!`,
//! `criterion_main!`, groups, `iter`, `iter_batched`) but replaces the
//! statistical machinery with a simple calibrated loop: warm up, pick an
//! iteration count that fills the measurement window, report mean
//! time per iteration. Good enough for the relative comparisons the
//! E4–E8 experiments make; swap in real criterion when network returns.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup (accepted, not acted on: the stub
/// always times one batch element at a time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Per-iteration input of unknown size.
    PerIteration,
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's display convention.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name (`&str`, `String`,
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Passed to the closure under measurement; drives the timed loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Calibrate: one iteration to estimate cost, then spread the
    // measurement window over `sample_size` samples.
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    if test_mode {
        // Smoke mode (`--test`, like real criterion): the single probe
        // iteration proved the bench runs without panicking.
        println!("{name:<60} ok (test mode, 1 iter)");
        return;
    }
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    let budget = measurement_time.max(Duration::from_millis(10));
    let iters = (budget.as_nanos() / per_iter.as_nanos() / sample_size.max(1) as u128)
        .clamp(1, 1_000_000) as u64;

    let mut best = per_iter;
    let mut total = probe.elapsed;
    let mut total_iters = probe.iters;
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters as u32;
        best = best.min(per);
        total += b.elapsed;
        total_iters += iters;
    }
    let mean = total / total_iters.max(1) as u32;
    println!("{name:<60} mean {mean:>12.2?}   best {best:>12.2?}   ({total_iters} iters)");
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
}

impl BenchmarkGroup {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Target wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(
            &name,
            self.sample_size,
            self.measurement_time,
            self.test_mode,
            &mut f,
        );
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(
            &name,
            self.sample_size,
            self.measurement_time,
            self.test_mode,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(&mut self) {}
}

/// The bench driver handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Honours criterion's `--test` flag (run each bench once, as a
    /// smoke test). Other CLI flags are ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode |= std::env::args().any(|a| a == "--test");
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            test_mode: self.test_mode,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (n, t, tm) = (self.sample_size, self.measurement_time, self.test_mode);
        run_one(&id.into_id(), n, t, tm, &mut f);
        self
    }

    /// Final reporting hook (no-op in the stub).
    pub fn final_summary(&mut self) {}
}

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        let mut counter = 0u64;
        group.bench_function("count", |b| b.iter(|| counter += 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
        });
        group.finish();
        assert!(counter > 0);
    }

    #[test]
    fn benchmark_id_renders_as_path() {
        assert_eq!(BenchmarkId::new("f", 42).to_string(), "f/42");
    }
}
