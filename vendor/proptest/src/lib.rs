//! Offline, API-compatible subset of the `proptest` crate so the
//! workspace's property tests run without network access.
//!
//! What is kept: the [`Strategy`] abstraction with `prop_map` /
//! `prop_flat_map` / `boxed`, integer-range and tuple strategies,
//! [`arbitrary::any`], [`collection::vec`] / [`collection::btree_set`],
//! [`sample::Index`], the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assume!`] / [`prop_oneof!`] macros and a deterministic
//! [`test_runner`].
//!
//! What is dropped: shrinking. A failing case reports the property name,
//! the case number, and the per-test seed, which is enough to reproduce
//! deterministically (the runner derives its stream from the test's
//! fully-qualified name, so reruns replay the identical cases).

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case runner and its configuration.

    /// Generator state handed to strategies (xoshiro256++ seeded via
    //  SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds a generator whose stream is fully determined by `seed`.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property is false for this input.
        Fail(String),
        /// The input fails a `prop_assume!` precondition; retry with a
        /// fresh input without counting the case.
        Reject,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (assumption-violating) case.
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// Runner knobs; accepts struct-update from [`Default`] like the
    /// real crate (`ProptestConfig { cases: 48, ..Default::default() }`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
        /// Cap on `prop_assume!` rejections before the runner fails the
        /// property as vacuous (matching upstream's behavior).
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig {
                cases,
                max_global_rejects: 4096,
            }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one property: generates inputs until `config.cases`
    /// successes, panicking on the first failure. The stream is seeded
    /// from `name`, so every run replays the same cases.
    pub fn run<F>(name: &str, config: ProptestConfig, case: F)
    where
        F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let seed = fnv1a(name);
        let mut rng = TestRng::seed_from_u64(seed);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    // Like upstream: a property whose assumptions reject
                    // everything is vacuous — fail loudly, don't pass.
                    assert!(
                        rejected <= config.max_global_rejects,
                        "proptest '{name}': too many global rejects \
                         ({rejected}; {passed}/{} cases ran)",
                        config.cases
                    );
                }
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest '{name}' failed at case {passed} (stream seed {seed:#018x}): {msg}"
                ),
            }
        }
    }
}

pub mod strategy {
    //! The value-generation abstraction and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Derives a second strategy from each generated value (for
        /// dependent inputs).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.new_value(rng)).new_value(rng)
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> std::fmt::Debug for BoxedStrategy<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy(..)")
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            self.0.new_value(rng)
        }
    }

    /// Uniform choice among alternative strategies (the engine behind
    /// `prop_oneof!`).
    #[derive(Debug)]
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `arms`; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let arm = rng.below(self.arms.len() as u64) as usize;
            self.arms[arm].new_value(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + (u128::from(rng.next_u64()) % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u128 + 1;
                    start + (u128::from(rng.next_u64()) % span) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! Default strategies per type (`any::<T>()`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<A>(PhantomData<A>);

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn new_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = (self.max - self.min) as u64 + 1;
            self.min + rng.below(span) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` (see [`vec`]).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` (see [`btree_set`]).
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet`s aiming for `size` distinct elements from `element`
    /// (bounded retries; a saturated value space yields fewer).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod sample {
    //! Sampling helper types.

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a slice whose length is unknown at generation time
    /// (resolved modulo the length at use).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// The concrete index for a collection of `len` elements.
        /// Panics if `len` is zero, like upstream.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }

        /// The element of `slice` this index selects.
        pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
            &slice[self.index(slice.len())]
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module-path alias so `prop::sample::Index` etc. resolve as they
    /// do with the real crate's prelude.
    pub mod prop {
        pub use crate::{arbitrary, collection, sample, strategy};
    }
}

/// Defines property tests: `proptest! { #[test] fn p(x in strat) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    $cfg,
                    |__proptest_rng| {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::new_value(&($strat), __proptest_rng);
                        )+
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{} (`{:?}` != `{:?}`)", format!($($fmt)+), left, right
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{} (`{:?}` == `{:?}`)", format!($($fmt)+), left, right
        );
    }};
}

/// Discards the current case (retried without counting) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_maps_and_flat_maps(
            (len, v) in (1usize..8).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(any::<u8>(), n))
            }),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert_eq!(v.len(), len);
            prop_assert!(v.get(idx.index(len)).is_some());
        }

        #[test]
        fn oneof_and_assume(choice in prop_oneof![Just(1u8), Just(2u8)], raw in any::<u8>()) {
            prop_assume!(raw != 0);
            prop_assert_ne!(choice, 0);
            prop_assert!(choice == 1 || choice == 2);
        }

        #[test]
        fn btree_sets_respect_size(s in crate::collection::btree_set(0u32..1000, 0..12)) {
            prop_assert!(s.len() < 12);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]
        #[test]
        fn config_override_applies(_x in any::<u64>()) {
            // Runs exactly 7 cases; nothing to assert beyond completing.
        }
    }

    #[test]
    fn runner_is_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::seed_from_u64(9);
        let mut b = crate::test_runner::TestRng::seed_from_u64(9);
        let s = crate::collection::vec(0u64..1000, 0..20);
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_context() {
        crate::test_runner::run(
            "doomed",
            crate::test_runner::ProptestConfig::default(),
            |_| Err(crate::test_runner::TestCaseError::fail("nope")),
        );
    }
}
