//! Offline, API-compatible subset of the `parking_lot` crate so the
//! workspace builds without network access: a [`Mutex`] whose `lock`
//! returns the guard directly (no poison `Result`), backed by
//! `std::sync::Mutex`. Poisoning is deliberately swallowed — matching
//! `parking_lot`'s semantics, a panicking critical section leaves the
//! data accessible.

#![forbid(unsafe_code)]

use std::fmt;

/// `std::sync::Mutex` with `parking_lot`'s poison-free `lock` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison from a panicked holder.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn contended_counter() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
