//! Offline, API-compatible subset of the `crossbeam` crate so the
//! workspace builds without network access. Only `crossbeam::channel`'s
//! unbounded MPMC channel is provided — implemented over a mutex-guarded
//! queue with a condvar, which is entirely adequate for the
//! thread-per-node live backend this workspace uses it for.

#![forbid(unsafe_code)]

pub mod channel {
    //! Unbounded MPMC channels with the `crossbeam-channel` API shape.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// The sending half; clonable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; clonable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Send failed: every receiver is gone. Carries the message back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Blocking receive failed: every sender is gone and the queue is
    /// drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a failed [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue currently empty; senders may still post.
        Empty,
        /// Queue drained and every sender is gone.
        Disconnected,
    }

    /// Outcome of a failed [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// Queue drained and every sender is gone.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; fails iff all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                // Wake blocked receivers so they observe disconnection.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            match state.queue.pop_front() {
                Some(msg) => Ok(msg),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive; fails once the channel is drained and all
        /// senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .chan
                    .ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocking receive with an upper bound on the wait.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .chan
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.try_recv(), Ok(i));
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_to_dropped_receiver_fails() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn timeout_elapses_without_traffic() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let sender = std::thread::spawn(move || {
                for i in 0..1000u32 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while got.len() < 1000 {
                match rx.recv_timeout(Duration::from_secs(5)) {
                    Ok(v) => got.push(v),
                    Err(e) => panic!("receive failed: {e:?}"),
                }
            }
            sender.join().unwrap();
            assert_eq!(got, (0..1000).collect::<Vec<_>>());
        }
    }
}
