//! # precipice — Cliff-Edge Consensus
//!
//! A production-quality Rust reproduction of *"Cliff-Edge Consensus:
//! Agreeing on the Precipice"* (Taïani, Porter, Coulson, Raynal, PaCT
//! 2013): a **local** form of consensus in which the nodes bordering a
//! crashed region of an arbitrarily large network agree on the region's
//! extent and on a common recovery decision — touching only nodes in the
//! region's vicinity, never the whole system.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`graph`] | `precipice-graph` | knowledge graphs, regions, borders, ranking, topology generators |
//! | [`sim`] | `precipice-sim` | deterministic discrete-event simulator, FIFO channels, perfect failure detector |
//! | [`consensus`] | `precipice-core` | the cliff-edge consensus state machine (paper Algorithm 1) |
//! | [`runtime`] | `precipice-runtime` | scenario runner and the CD1–CD7 specification checker |
//! | [`baseline`] | `precipice-baseline` | global flooding consensus, gossip dissemination, no-arbitration ablation |
//! | [`net`] | `precipice-net` | sharded live event-loop runtime, `precipice serve` sessions, gated live schedule exploration (plus the thread-per-node reference) |
//! | [`workload`] | `precipice-workload` | failure-pattern generators, figure scenarios, sweeps, result tables |
//!
//! # Quickstart
//!
//! ```
//! use precipice::graph::{torus, GridDims, NodeId};
//! use precipice::runtime::{check_spec, Exec, Scenario};
//! use precipice::sim::SimTime;
//!
//! // An 8x8 torus in which a 2-node region crashes.
//! let scenario = Scenario::builder(torus(GridDims::square(8)))
//!     .crash(NodeId(9), SimTime::from_millis(1))
//!     .crash(NodeId(10), SimTime::from_millis(3))
//!     .seed(1)
//!     .build();
//! let report = scenario.exec(Exec::new()).report;
//!
//! // The border of the crashed region agreed on its extent...
//! assert!(!report.decisions.is_empty());
//! // ...and the run satisfies the paper's whole specification.
//! assert!(check_spec(&report).is_empty());
//! ```
//!
//! See the `examples/` directory for richer scenarios (the paper's
//! Figure-1 cities network, overlay repair, cascade storms, and the live
//! threaded backend).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use precipice_baseline as baseline;
pub use precipice_core as consensus;
pub use precipice_graph as graph;
pub use precipice_net as net;
pub use precipice_runtime as runtime;
pub use precipice_sim as sim;
pub use precipice_workload as workload;
