//! `precipice` — command-line front end: describe a topology, a crashed
//! region and a crash timing; run cliff-edge consensus; get the
//! decisions, the cost and a CD1–CD7 verdict.
//!
//! ```text
//! precipice --topology torus:16 --region blob:6 --timing cascade:4ms --seed 7
//! precipice --topology ring:64 --region nodes:3,4,5 --optimized --csv
//! precipice --topology geometric:200:0.12 --region ball:2 --dot crashed.dot
//! precipice --topology torus:24 --region blob:8 --runs 32 --jobs 8
//! ```
//!
//! With `--runs k` the same scenario is swept over `k` consecutive
//! seeds, sharded across `--jobs` worker threads by the deterministic
//! sweep engine — the output is byte-identical for any worker count.
//!
//! Exits non-zero if the run violates the specification (it never should;
//! `--no-arbitration` exists to see what violations look like).

use std::collections::BTreeSet;
use std::process::ExitCode;

use precipice::consensus::ProtocolConfig;
use precipice::graph::{to_dot, Graph, GridDims, NodeId, Region};
use precipice::runtime::{check_spec, MulticastMode, RunDigest, RunReport, Scenario};
use precipice::sim::{LatencyModel, SimConfig, SimTime};
use precipice::workload::patterns::{bfs_ball, blob_of_size, line_region, schedule, CrashTiming};
use precipice::workload::stats::summarize;
use precipice::workload::sweep::{self, Jobs};
use precipice::workload::table::{fmt_num, Table};

const USAGE: &str = "\
precipice — run cliff-edge consensus on a synthetic scenario

USAGE:
    precipice [OPTIONS]

OPTIONS:
    --topology <spec>   torus:<side> | grid:<w>x<h> | ring:<n> | path:<n> |
                        star:<n> | geometric:<n>:<radius> | er:<n>:<p> |
                        tree:<n>                    [default: torus:8]
    --region <spec>     blob:<k> | line:<k> | ball:<radius> |
                        nodes:<id,id,...>           [default: blob:4]
    --at <node-id>      region seed node            [default: graph center]
    --timing <spec>     simultaneous | cascade:<dur> | spread:<dur>
                        (dur like 4ms, 250us, 1s)   [default: simultaneous]
    --seed <u64>        RNG seed                    [default: 0]
    --runs <k>          sweep seeds <seed>..<seed>+<k>, aggregated
                                                    [default: 1]
    --jobs <n>          sweep worker threads
                        [default: $PRECIPICE_JOBS, else all cores]
    --optimized         enable early-termination + fast-abort
    --no-arbitration    ABLATION: disable the rejection mechanism
    --sequential-multicast  crash-interruptible multicast loops
    --csv               print tables as CSV instead of markdown
    --dot <path>        also write the crashed topology as Graphviz DOT
    -h, --help          show this help
";

#[derive(Debug, Clone, PartialEq)]
struct Options {
    topology: String,
    region: String,
    at: Option<u32>,
    timing: String,
    seed: u64,
    runs: u64,
    jobs: Option<usize>,
    optimized: bool,
    no_arbitration: bool,
    sequential_multicast: bool,
    csv: bool,
    dot: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            topology: "torus:8".into(),
            region: "blob:4".into(),
            at: None,
            timing: "simultaneous".into(),
            seed: 0,
            runs: 1,
            jobs: None,
            optimized: false,
            no_arbitration: false,
            sequential_multicast: false,
            csv: false,
            dot: None,
        }
    }
}

fn parse_args<I: Iterator<Item = String>>(mut args: I) -> Result<Options, String> {
    let mut opts = Options::default();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--topology" => opts.topology = value("--topology")?,
            "--region" => opts.region = value("--region")?,
            "--at" => opts.at = Some(value("--at")?.parse().map_err(|e| format!("--at: {e}"))?),
            "--timing" => opts.timing = value("--timing")?,
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--runs" => {
                opts.runs = value("--runs")?
                    .parse()
                    .map_err(|e| format!("--runs: {e}"))?;
                if opts.runs == 0 {
                    return Err("--runs wants at least one run".to_owned());
                }
            }
            "--jobs" => {
                let n: usize = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs wants a positive worker count".to_owned());
                }
                opts.jobs = Some(n);
            }
            "--optimized" => opts.optimized = true,
            "--no-arbitration" => opts.no_arbitration = true,
            "--sequential-multicast" => opts.sequential_multicast = true,
            "--csv" => opts.csv = true,
            "--dot" => opts.dot = Some(value("--dot")?),
            "-h" | "--help" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn parse_topology(spec: &str, seed: u64) -> Result<Graph, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| {
        s.parse::<usize>()
            .map_err(|e| format!("bad number {s:?}: {e}"))
    };
    let fnum = |s: &str| {
        s.parse::<f64>()
            .map_err(|e| format!("bad number {s:?}: {e}"))
    };
    match parts.as_slice() {
        ["torus", side] => Ok(precipice::graph::torus(GridDims::square(num(side)?))),
        ["grid", dims] => {
            let (w, h) = dims
                .split_once('x')
                .ok_or_else(|| format!("grid wants <w>x<h>, got {dims:?}"))?;
            Ok(precipice::graph::grid(GridDims {
                width: num(w)?,
                height: num(h)?,
            }))
        }
        ["ring", n] => Ok(precipice::graph::ring(num(n)?)),
        ["path", n] => Ok(precipice::graph::path(num(n)?)),
        ["star", n] => Ok(precipice::graph::star(num(n)?)),
        ["geometric", n, r] => Ok(precipice::graph::random_geometric_connected(
            num(n)?,
            fnum(r)?,
            seed,
        )),
        ["er", n, p] => Ok(precipice::graph::erdos_renyi_connected(
            num(n)?,
            fnum(p)?,
            seed,
        )),
        ["tree", n] => Ok(precipice::graph::random_tree(num(n)?, seed)),
        _ => Err(format!("unknown topology spec {spec:?}")),
    }
}

fn parse_region(spec: &str, graph: &Graph, at: Option<u32>) -> Result<Region, String> {
    let center = at.map(NodeId).unwrap_or(NodeId((graph.len() / 2) as u32));
    if !graph.contains(center) {
        return Err(format!("--at {center} out of range (n={})", graph.len()));
    }
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| {
        s.parse::<usize>()
            .map_err(|e| format!("bad number {s:?}: {e}"))
    };
    match parts.as_slice() {
        ["blob", k] => Ok(blob_of_size(graph, center, num(k)?)),
        ["line", k] => Ok(line_region(graph, center, num(k)?)),
        ["ball", r] => Ok(bfs_ball(graph, center, num(r)?)),
        ["nodes", list] => {
            let ids: Result<Vec<u32>, _> = list.split(',').map(str::parse).collect();
            let region: Region = ids
                .map_err(|e| format!("bad node list: {e}"))?
                .into_iter()
                .map(NodeId)
                .collect();
            for p in region.iter() {
                if !graph.contains(p) {
                    return Err(format!("region node {p} out of range"));
                }
            }
            Ok(region)
        }
        _ => Err(format!("unknown region spec {spec:?}")),
    }
}

fn parse_duration(s: &str) -> Result<SimTime, String> {
    let (digits, unit) = s.split_at(s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len()));
    let n: u64 = digits
        .parse()
        .map_err(|e| format!("bad duration {s:?}: {e}"))?;
    match unit {
        "ns" => Ok(SimTime::from_nanos(n)),
        "us" | "µs" => Ok(SimTime::from_micros(n)),
        "ms" | "" => Ok(SimTime::from_millis(n)),
        "s" => Ok(SimTime::from_secs(n)),
        _ => Err(format!("bad duration unit {unit:?} in {s:?}")),
    }
}

fn parse_timing(spec: &str, seed: u64) -> Result<CrashTiming, String> {
    let start = SimTime::from_millis(1);
    match spec.split_once(':') {
        None if spec == "simultaneous" => Ok(CrashTiming::Simultaneous(start)),
        Some(("cascade", d)) => Ok(CrashTiming::Cascade {
            start,
            step: parse_duration(d)?,
        }),
        Some(("spread", d)) => Ok(CrashTiming::Spread {
            start,
            window: parse_duration(d)?,
            seed,
        }),
        _ => Err(format!("unknown timing spec {spec:?}")),
    }
}

fn run(opts: &Options) -> Result<bool, String> {
    let graph = parse_topology(&opts.topology, opts.seed)?;
    let region = parse_region(&opts.region, &graph, opts.at)?;
    // Validate the spec once up front; the sweep re-parses per seed
    // below (spread timing derives its schedule from the seed).
    parse_timing(&opts.timing, opts.seed)?;

    if let Some(path) = &opts.dot {
        let crashed: BTreeSet<NodeId> = region.iter().collect();
        std::fs::write(path, to_dot(&graph, &crashed))
            .map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("wrote {path}");
    }

    let mut protocol = if opts.optimized {
        ProtocolConfig::optimized()
    } else {
        ProtocolConfig::faithful()
    };
    protocol.arbitration = !opts.no_arbitration;

    let build = |seed: u64| -> Scenario {
        let timing = parse_timing(&opts.timing, seed).expect("timing spec validated above");
        Scenario::builder(graph.clone())
            .name("cli")
            .crashes(schedule(region.iter(), timing))
            .protocol(protocol)
            .multicast(if opts.sequential_multicast {
                MulticastMode::Sequential
            } else {
                MulticastMode::Atomic
            })
            .sim_config(SimConfig {
                seed,
                latency: LatencyModel::Uniform {
                    min: SimTime::from_micros(200),
                    max: SimTime::from_millis(2),
                },
                fd_latency: LatencyModel::Uniform {
                    min: SimTime::from_millis(1),
                    max: SimTime::from_millis(5),
                },
                record_trace: true,
                max_events: Some(100_000_000),
            })
            .build()
    };

    if opts.runs > 1 {
        let jobs = opts.jobs.map(Jobs::new).unwrap_or_else(Jobs::from_env);
        let seeds: Vec<u64> = (0..opts.runs).map(|i| opts.seed.wrapping_add(i)).collect();
        let digests = sweep::run(jobs, &seeds, |_, &seed| build(seed).run().digest());
        return Ok(print_sweep(opts, &graph, &region, &seeds, &digests));
    }
    if opts.jobs.is_some() {
        // On stderr so sweep stdout stays byte-comparable across flags.
        eprintln!("note: --jobs has no effect on a single run; combine it with --runs <k>");
    }

    let report = build(opts.seed).run();
    print_single(opts, &graph, &region, &report)
}

/// Prints the sweep tables and returns the spec verdict over all runs.
fn print_sweep(
    opts: &Options,
    graph: &Graph,
    region: &Region,
    seeds: &[u64],
    digests: &[RunDigest],
) -> bool {
    let mut per_seed = Table::new(
        format!("sweep ({} runs)", seeds.len()),
        [
            "seed",
            "deciders",
            "decided regions",
            "messages",
            "KB",
            "converged (ms)",
            "violations",
        ],
    );
    for (seed, d) in seeds.iter().zip(digests) {
        per_seed.push_row([
            seed.to_string(),
            d.deciders.to_string(),
            d.decided_regions.len().to_string(),
            d.messages.to_string(),
            fmt_num(d.bytes as f64 / 1024.0),
            fmt_num(d.last_decision_ms),
            d.violations.to_string(),
        ]);
    }

    let msgs: Vec<f64> = digests.iter().map(|d| d.messages as f64).collect();
    let conv: Vec<f64> = digests.iter().map(|d| d.last_decision_ms).collect();
    let total_violations: usize = digests.iter().map(|d| d.violations).sum();
    let msgs_summary = summarize(&msgs);
    let conv_summary = summarize(&conv);
    let mut agg = Table::new("aggregate", ["metric", "value"]);
    agg.push_row([
        "topology".to_string(),
        format!("{} ({} nodes)", opts.topology, graph.len()),
    ]);
    agg.push_row(["crashed region".to_string(), region.to_string()]);
    agg.push_row(["runs".to_string(), seeds.len().to_string()]);
    agg.push_row([
        "messages (mean/min/max)".to_string(),
        format!(
            "{} / {} / {}",
            fmt_num(msgs_summary.mean),
            fmt_num(msgs_summary.min),
            fmt_num(msgs_summary.max)
        ),
    ]);
    agg.push_row([
        "converged ms (mean/max)".to_string(),
        format!(
            "{} / {}",
            fmt_num(conv_summary.mean),
            fmt_num(conv_summary.max)
        ),
    ]);
    agg.push_row(["violations".to_string(), total_violations.to_string()]);

    if opts.csv {
        print!("{}", per_seed.to_csv());
        println!();
        print!("{}", agg.to_csv());
    } else {
        println!("{per_seed}");
        println!("{agg}");
    }

    if total_violations == 0 {
        println!(
            "specification: CD1-CD7 all satisfied across {} runs ✓",
            seeds.len()
        );
        true
    } else {
        println!(
            "specification VIOLATED in sweep: {total_violations} violations across {} runs",
            seeds.len()
        );
        false
    }
}

/// Prints the single-run tables and verdict (the original CLI contract).
fn print_single(
    opts: &Options,
    graph: &Graph,
    region: &Region,
    report: &RunReport<NodeId>,
) -> Result<bool, String> {
    let mut decisions = Table::new(
        format!("decisions ({} deciders)", report.decisions.len()),
        ["node", "region", "border", "coordinator", "at"],
    );
    for (node, d) in &report.decisions {
        decisions.push_row([
            node.to_string(),
            d.view.region().to_string(),
            d.view.border().to_string(),
            d.value.to_string(),
            d.at.to_string(),
        ]);
    }

    let mut cost = Table::new("cost", ["metric", "value"]);
    cost.push_row([
        "topology".to_string(),
        format!("{} ({} nodes)", opts.topology, graph.len()),
    ]);
    cost.push_row(["crashed region".to_string(), region.to_string()]);
    cost.push_row([
        "messages".to_string(),
        report.metrics.messages_sent().to_string(),
    ]);
    cost.push_row(["bytes".to_string(), report.metrics.bytes_sent().to_string()]);
    cost.push_row([
        "nodes involved".to_string(),
        format!(
            "{} / {}",
            report.metrics.nodes_with_traffic().len(),
            graph.len()
        ),
    ]);
    cost.push_row([
        "converged at (ms)".to_string(),
        fmt_num(report.last_decision_at().map_or(0.0, |t| t.as_millis_f64())),
    ]);

    if opts.csv {
        print!("{}", decisions.to_csv());
        println!();
        print!("{}", cost.to_csv());
    } else {
        println!("{decisions}");
        println!("{cost}");
    }

    let violations = check_spec(report);
    if violations.is_empty() {
        println!("specification: CD1-CD7 all satisfied ✓");
        Ok(true)
    } else {
        println!("specification VIOLATED:");
        for v in &violations {
            println!("  - {v}");
        }
        Ok(false)
    }
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts, Options::default());
    }

    #[test]
    fn full_flag_set() {
        let opts = parse(&[
            "--topology",
            "ring:32",
            "--region",
            "nodes:1,2,3",
            "--at",
            "5",
            "--timing",
            "cascade:4ms",
            "--seed",
            "9",
            "--optimized",
            "--no-arbitration",
            "--sequential-multicast",
            "--csv",
            "--dot",
            "/tmp/x.dot",
            "--runs",
            "8",
            "--jobs",
            "3",
        ])
        .unwrap();
        assert_eq!(opts.topology, "ring:32");
        assert_eq!(opts.region, "nodes:1,2,3");
        assert_eq!(opts.at, Some(5));
        assert_eq!(opts.timing, "cascade:4ms");
        assert_eq!(opts.seed, 9);
        assert!(opts.optimized && opts.no_arbitration && opts.sequential_multicast && opts.csv);
        assert_eq!(opts.dot.as_deref(), Some("/tmp/x.dot"));
        assert_eq!(opts.runs, 8);
        assert_eq!(opts.jobs, Some(3));
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--seed"]).is_err(), "missing value");
        assert!(parse(&["--seed", "abc"]).is_err(), "bad value");
    }

    #[test]
    fn sweep_flags() {
        let opts = parse(&["--runs", "4", "--jobs", "2"]).unwrap();
        assert_eq!(opts.runs, 4);
        assert_eq!(opts.jobs, Some(2));
        assert!(parse(&["--runs", "0"]).is_err(), "zero runs");
        assert!(parse(&["--jobs", "0"]).is_err(), "zero workers");
        assert!(parse(&["--jobs", "many"]).is_err(), "bad value");
    }

    #[test]
    fn topology_specs() {
        assert_eq!(parse_topology("torus:4", 0).unwrap().len(), 16);
        assert_eq!(parse_topology("grid:3x5", 0).unwrap().len(), 15);
        assert_eq!(parse_topology("ring:7", 0).unwrap().len(), 7);
        assert_eq!(parse_topology("path:7", 0).unwrap().len(), 7);
        assert_eq!(parse_topology("star:7", 0).unwrap().len(), 7);
        assert_eq!(parse_topology("tree:9", 1).unwrap().len(), 9);
        assert!(parse_topology("geometric:30:0.4", 1)
            .unwrap()
            .is_connected());
        assert!(parse_topology("er:30:0.3", 1).unwrap().is_connected());
        assert!(parse_topology("moebius:4", 0).is_err());
        assert!(parse_topology("grid:3", 0).is_err());
    }

    #[test]
    fn region_specs() {
        let g = parse_topology("torus:6", 0).unwrap();
        assert_eq!(parse_region("blob:5", &g, None).unwrap().len(), 5);
        assert_eq!(parse_region("line:4", &g, Some(0)).unwrap().len(), 4);
        assert_eq!(parse_region("ball:1", &g, Some(7)).unwrap().len(), 5);
        let explicit = parse_region("nodes:1,3,5", &g, None).unwrap();
        assert_eq!(explicit.as_slice(), &[NodeId(1), NodeId(3), NodeId(5)]);
        assert!(parse_region("nodes:999", &g, None).is_err());
        assert!(parse_region("blob:x", &g, None).is_err());
        assert!(parse_region("blob:3", &g, Some(999)).is_err());
    }

    #[test]
    fn durations_and_timing() {
        assert_eq!(parse_duration("4ms").unwrap(), SimTime::from_millis(4));
        assert_eq!(parse_duration("250us").unwrap(), SimTime::from_micros(250));
        assert_eq!(parse_duration("1s").unwrap(), SimTime::from_secs(1));
        assert_eq!(parse_duration("7").unwrap(), SimTime::from_millis(7));
        assert!(parse_duration("4lightyears").is_err());
        assert!(matches!(
            parse_timing("simultaneous", 0).unwrap(),
            CrashTiming::Simultaneous(_)
        ));
        assert!(matches!(
            parse_timing("cascade:2ms", 0).unwrap(),
            CrashTiming::Cascade { .. }
        ));
        assert!(matches!(
            parse_timing("spread:50ms", 3).unwrap(),
            CrashTiming::Spread { .. }
        ));
        assert!(parse_timing("sometimes", 0).is_err());
    }

    #[test]
    fn end_to_end_run_is_clean() {
        let opts = Options {
            topology: "torus:6".into(),
            region: "blob:3".into(),
            timing: "cascade:2ms".into(),
            seed: 3,
            ..Options::default()
        };
        assert_eq!(run(&opts), Ok(true));
    }

    #[test]
    fn sweep_run_is_clean() {
        let opts = Options {
            topology: "torus:6".into(),
            region: "blob:3".into(),
            timing: "cascade:2ms".into(),
            seed: 3,
            runs: 4,
            jobs: Some(2),
            ..Options::default()
        };
        assert_eq!(run(&opts), Ok(true));
    }

    #[test]
    fn ablation_run_reports_violations_somewhere() {
        // Not every seed breaks, but this pinned one produces skew; we
        // only require that the run completes with a boolean verdict.
        let opts = Options {
            topology: "torus:8".into(),
            region: "line:4".into(),
            timing: "cascade:1ms".into(),
            seed: 1,
            no_arbitration: true,
            ..Options::default()
        };
        let verdict = run(&opts).expect("runs");
        let _ = verdict; // spec may or may not break for this seed; both are valid runs.
    }
}
