//! `precipice` — command-line front end: describe a topology, a crashed
//! region and a crash timing; run cliff-edge consensus; get the
//! decisions, the cost and a CD1–CD7 verdict.
//!
//! ```text
//! precipice --topology torus:16 --region blob:6 --timing cascade:4ms --seed 7
//! precipice --topology ring:64 --region nodes:3,4,5 --optimized --csv
//! precipice --topology geometric:200:0.12 --region ball:2 --dot crashed.dot
//! precipice --topology torus:24 --region blob:8 --runs 32 --jobs 8
//! precipice check --topology torus:6 --region blob:3 --budget 1000 --jobs 4
//! precipice check --topology path:9 --region nodes:3,4 --backend live --shards 2
//! precipice replay counterexample.txt
//! precipice serve --shards 4 < commands.jsonl
//! ```
//!
//! With `--runs k` the same scenario is swept over `k` consecutive
//! seeds, sharded across `--jobs` worker threads by the deterministic
//! sweep engine — the output is byte-identical for any worker count.
//!
//! `precipice check` model-checks one scenario across `--budget`
//! adversarial delivery/crash schedules; on a CD violation it
//! delta-debugs the schedule to a minimal counterexample and emits a
//! replayable artifact that `precipice replay` re-executes bit-for-bit.
//!
//! Exits non-zero if the run violates the specification (it never should;
//! `--no-arbitration` and `--invert-arbitration` exist to see what
//! violations look like).

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

use precipice::consensus::ProtocolConfig;
use precipice::graph::{to_dot, Graph, GridDims, NodeId, Region};
use precipice::runtime::explore::{probe, render_violations, Artifact};
use precipice::runtime::{check_spec, Exec, MulticastMode, RunDigest, RunReport, Scenario};
use precipice::sim::{LatencyModel, SchedulePolicy, SimConfig, SimTime};
use precipice::workload::explore::{
    explore_scenario, shrink_scenario, ExploreConfig, PolicyMix, ShrinkTopology,
};
use precipice::workload::patterns::{bfs_ball, blob_of_size, line_region, schedule, CrashTiming};
use precipice::workload::stats::summarize;
use precipice::workload::sweep::{Jobs, SweepSpec};
use precipice::workload::table::{fmt_num, Table};

const USAGE: &str = "\
precipice — run cliff-edge consensus on a synthetic scenario

USAGE:
    precipice [OPTIONS]
    precipice check [OPTIONS] [CHECK OPTIONS]
    precipice replay <artifact>
    precipice serve [--shards <n>]
    precipice graph build <spec> -o <file.pcsr> [--seed <u64>]
    precipice graph info <file.pcsr>

OPTIONS:
    --topology <spec>   torus:<side> | grid:<w>x<h> | ring:<n> | path:<n> |
                        star:<n> | geometric:<n>:<radius> | er:<n>:<p> |
                        tree:<n> | pcsr:<file>      [default: torus:8]
    --region <spec>     blob:<k> | line:<k> | ball:<radius> |
                        nodes:<id,id,...>           [default: blob:4]
    --at <node-id>      region seed node            [default: graph center]
    --timing <spec>     simultaneous | cascade:<dur> | spread:<dur>
                        (dur like 4ms, 250us, 1s)   [default: simultaneous]
    --seed <u64>        RNG seed                    [default: 0]
    --runs <k>          sweep seeds <seed>..<seed>+<k>, aggregated
                                                    [default: 1]
    --jobs <n>          sweep worker threads
                        [default: $PRECIPICE_JOBS, else all cores]
    --optimized         enable early-termination + fast-abort
    --no-arbitration    ABLATION: disable the rejection mechanism
    --invert-arbitration  FAULT INJECTION: reject higher- instead of
                        lower-ranked views (a planted bug for `check`)
    --sequential-multicast  crash-interruptible multicast loops
    --csv               print tables as CSV instead of markdown
    --dot <path>        also write the crashed topology as Graphviz DOT
    -h, --help          show this help

CHECK OPTIONS (adversarial schedule exploration):
    --budget <n>        schedules to explore        [default: 1000]
    --policy <p>        random | pcr | mixed | guided
                        (guided = coverage-guided corpus mutation)
                                                    [default: mixed]
    --stop-after <k>    stop once k violating schedules were found
                        (0 = always spend the whole budget) [default: 0]
    --artifact <path>   write the first shrunk counterexample here
                        (default: print it inline; sim backend only)
    --shrink-scenario   also minimize the *scenario* of the first
                        violation: drop crashes, shrink torus/ring
                        topologies (crashes remapped), re-shrink the
                        schedule on the result (sim backend only)
    --backend <b>       sim | live — explore simulator schedules, or
                        gate the sharded live runtime and explore *real*
                        backend schedules one released event at a time
                                                    [default: sim]
    --shards <n>        live-backend worker shards  [default: 2]

SERVE (long-lived process, line-delimited JSON on stdin/stdout):
    serve --shards <n>  host many concurrent agreement instances
                        [default shards: 2]; commands: open, crash,
                        await, read, status, close, shutdown — see the
                        README \"Serving\" section for the protocol

GRAPH SUBCOMMANDS (on-disk topologies):
    graph build <spec> -o <file>   write <spec> (same grammar as
                        --topology) as a .pcsr file; torus/grid/ring/path
                        stream straight to disk without materializing the
                        graph, so sizes far beyond RAM-resident builds work
    graph info <file>   print the .pcsr header and verify its checksum
";

#[derive(Debug, Clone, PartialEq)]
struct Options {
    topology: String,
    region: String,
    at: Option<u32>,
    timing: String,
    seed: u64,
    runs: u64,
    jobs: Option<usize>,
    optimized: bool,
    no_arbitration: bool,
    invert_arbitration: bool,
    sequential_multicast: bool,
    csv: bool,
    dot: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            topology: "torus:8".into(),
            region: "blob:4".into(),
            at: None,
            timing: "simultaneous".into(),
            seed: 0,
            runs: 1,
            jobs: None,
            optimized: false,
            no_arbitration: false,
            invert_arbitration: false,
            sequential_multicast: false,
            csv: false,
            dot: None,
        }
    }
}

fn parse_args<I: Iterator<Item = String>>(mut args: I) -> Result<Options, String> {
    let mut opts = Options::default();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--topology" => opts.topology = value("--topology")?,
            "--region" => opts.region = value("--region")?,
            "--at" => opts.at = Some(value("--at")?.parse().map_err(|e| format!("--at: {e}"))?),
            "--timing" => opts.timing = value("--timing")?,
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--runs" => {
                opts.runs = value("--runs")?
                    .parse()
                    .map_err(|e| format!("--runs: {e}"))?;
                if opts.runs == 0 {
                    return Err("--runs wants at least one run".to_owned());
                }
            }
            "--jobs" => {
                let n: usize = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs wants a positive worker count".to_owned());
                }
                opts.jobs = Some(n);
            }
            "--optimized" => opts.optimized = true,
            "--no-arbitration" => opts.no_arbitration = true,
            "--invert-arbitration" => opts.invert_arbitration = true,
            "--sequential-multicast" => opts.sequential_multicast = true,
            "--csv" => opts.csv = true,
            "--dot" => opts.dot = Some(value("--dot")?),
            "-h" | "--help" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn parse_topology(spec: &str, seed: u64) -> Result<Graph, String> {
    // `pcsr:<path>` maps an on-disk topology zero-copy; match it before
    // the colon split, since paths may contain colons.
    if let Some(file) = spec.strip_prefix("pcsr:") {
        return Graph::open_pcsr(file).map_err(|e| format!("cannot open {file:?}: {e}"));
    }
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| {
        s.parse::<usize>()
            .map_err(|e| format!("bad number {s:?}: {e}"))
    };
    let fnum = |s: &str| {
        s.parse::<f64>()
            .map_err(|e| format!("bad number {s:?}: {e}"))
    };
    match parts.as_slice() {
        ["torus", side] => Ok(precipice::graph::torus(GridDims::square(num(side)?))),
        ["grid", dims] => {
            let (w, h) = dims
                .split_once('x')
                .ok_or_else(|| format!("grid wants <w>x<h>, got {dims:?}"))?;
            Ok(precipice::graph::grid(GridDims {
                width: num(w)?,
                height: num(h)?,
            }))
        }
        ["ring", n] => Ok(precipice::graph::ring(num(n)?)),
        ["path", n] => Ok(precipice::graph::path(num(n)?)),
        ["star", n] => Ok(precipice::graph::star(num(n)?)),
        ["geometric", n, r] => Ok(precipice::graph::random_geometric_connected(
            num(n)?,
            fnum(r)?,
            seed,
        )),
        ["er", n, p] => Ok(precipice::graph::erdos_renyi_connected(
            num(n)?,
            fnum(p)?,
            seed,
        )),
        ["tree", n] => Ok(precipice::graph::random_tree(num(n)?, seed)),
        _ => Err(format!("unknown topology spec {spec:?}")),
    }
}

fn parse_region(spec: &str, graph: &Graph, at: Option<u32>) -> Result<Region, String> {
    let center = at.map(NodeId).unwrap_or(NodeId((graph.len() / 2) as u32));
    if !graph.contains(center) {
        return Err(format!("--at {center} out of range (n={})", graph.len()));
    }
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| {
        s.parse::<usize>()
            .map_err(|e| format!("bad number {s:?}: {e}"))
    };
    match parts.as_slice() {
        ["blob", k] => Ok(blob_of_size(graph, center, num(k)?)),
        ["line", k] => Ok(line_region(graph, center, num(k)?)),
        ["ball", r] => Ok(bfs_ball(graph, center, num(r)?)),
        ["nodes", list] => {
            let ids: Result<Vec<u32>, _> = list.split(',').map(str::parse).collect();
            let region: Region = ids
                .map_err(|e| format!("bad node list: {e}"))?
                .into_iter()
                .map(NodeId)
                .collect();
            for p in region.iter() {
                if !graph.contains(p) {
                    return Err(format!("region node {p} out of range"));
                }
            }
            Ok(region)
        }
        _ => Err(format!("unknown region spec {spec:?}")),
    }
}

fn parse_duration(s: &str) -> Result<SimTime, String> {
    let (digits, unit) = s.split_at(s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len()));
    let n: u64 = digits
        .parse()
        .map_err(|e| format!("bad duration {s:?}: {e}"))?;
    match unit {
        "ns" => Ok(SimTime::from_nanos(n)),
        "us" | "µs" => Ok(SimTime::from_micros(n)),
        "ms" | "" => Ok(SimTime::from_millis(n)),
        "s" => Ok(SimTime::from_secs(n)),
        _ => Err(format!("bad duration unit {unit:?} in {s:?}")),
    }
}

fn parse_timing(spec: &str, seed: u64) -> Result<CrashTiming, String> {
    let start = SimTime::from_millis(1);
    match spec.split_once(':') {
        None if spec == "simultaneous" => Ok(CrashTiming::Simultaneous(start)),
        Some(("cascade", d)) => Ok(CrashTiming::Cascade {
            start,
            step: parse_duration(d)?,
        }),
        Some(("spread", d)) => Ok(CrashTiming::Spread {
            start,
            window: parse_duration(d)?,
            seed,
        }),
        _ => Err(format!("unknown timing spec {spec:?}")),
    }
}

/// The protocol configuration the CLI flags describe.
fn protocol_of(opts: &Options) -> ProtocolConfig {
    let mut protocol = if opts.optimized {
        ProtocolConfig::optimized()
    } else {
        ProtocolConfig::faithful()
    };
    protocol.arbitration = !opts.no_arbitration;
    protocol.invert_arbitration = opts.invert_arbitration;
    protocol
}

/// Builds the sealed scenario for `seed` (timing specs must have been
/// validated once; spread timing derives its schedule from the seed).
fn scenario_for(opts: &Options, graph: &Graph, region: &Region, seed: u64) -> Scenario {
    let timing = parse_timing(&opts.timing, seed).expect("timing spec validated up front");
    Scenario::builder(graph.clone())
        .name("cli")
        .crashes(schedule(region.iter(), timing))
        .protocol(protocol_of(opts))
        .multicast(if opts.sequential_multicast {
            MulticastMode::Sequential
        } else {
            MulticastMode::Atomic
        })
        .sim_config(SimConfig {
            seed,
            latency: LatencyModel::Uniform {
                min: SimTime::from_micros(200),
                max: SimTime::from_millis(2),
            },
            fd_latency: LatencyModel::Uniform {
                min: SimTime::from_millis(1),
                max: SimTime::from_millis(5),
            },
            record_trace: true,
            max_events: Some(100_000_000),
        })
        .build()
}

fn run(opts: &Options) -> Result<bool, String> {
    let graph = parse_topology(&opts.topology, opts.seed)?;
    let region = parse_region(&opts.region, &graph, opts.at)?;
    // Validate the spec once up front; the sweep re-parses per seed
    // below (spread timing derives its schedule from the seed).
    parse_timing(&opts.timing, opts.seed)?;

    if let Some(path) = &opts.dot {
        let crashed: BTreeSet<NodeId> = region.iter().collect();
        std::fs::write(path, to_dot(&graph, &crashed))
            .map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("wrote {path}");
    }

    let build = |seed: u64| -> Scenario { scenario_for(opts, &graph, &region, seed) };

    if opts.runs > 1 {
        let jobs = opts.jobs.map(Jobs::new).unwrap_or_else(Jobs::from_env);
        let seeds: Vec<u64> = (0..opts.runs).map(|i| opts.seed.wrapping_add(i)).collect();
        let digests = SweepSpec::new(jobs).map(&seeds, |_, &seed| {
            build(seed).exec(Exec::new()).report.digest()
        });
        return Ok(print_sweep(opts, &graph, &region, &seeds, &digests));
    }
    if opts.jobs.is_some() {
        // On stderr so sweep stdout stays byte-comparable across flags.
        eprintln!("note: --jobs has no effect on a single run; combine it with --runs <k>");
    }

    let report = build(opts.seed).exec(Exec::new()).report;
    print_single(opts, &graph, &region, &report)
}

/// Prints the sweep tables and returns the spec verdict over all runs.
fn print_sweep(
    opts: &Options,
    graph: &Graph,
    region: &Region,
    seeds: &[u64],
    digests: &[RunDigest],
) -> bool {
    let mut per_seed = Table::new(
        format!("sweep ({} runs)", seeds.len()),
        [
            "seed",
            "deciders",
            "decided regions",
            "messages",
            "KB",
            "converged (ms)",
            "violations",
        ],
    );
    for (seed, d) in seeds.iter().zip(digests) {
        per_seed.push_row([
            seed.to_string(),
            d.deciders.to_string(),
            d.decided_regions.len().to_string(),
            d.messages.to_string(),
            fmt_num(d.bytes as f64 / 1024.0),
            fmt_num(d.last_decision_ms),
            d.violations.to_string(),
        ]);
    }

    let msgs: Vec<f64> = digests.iter().map(|d| d.messages as f64).collect();
    let conv: Vec<f64> = digests.iter().map(|d| d.last_decision_ms).collect();
    let total_violations: usize = digests.iter().map(|d| d.violations).sum();
    let msgs_summary = summarize(&msgs);
    let conv_summary = summarize(&conv);
    let mut agg = Table::new("aggregate", ["metric", "value"]);
    agg.push_row([
        "topology".to_string(),
        format!("{} ({} nodes)", opts.topology, graph.len()),
    ]);
    agg.push_row(["crashed region".to_string(), region.to_string()]);
    agg.push_row(["runs".to_string(), seeds.len().to_string()]);
    agg.push_row([
        "messages (mean/min/max)".to_string(),
        format!(
            "{} / {} / {}",
            fmt_num(msgs_summary.mean),
            fmt_num(msgs_summary.min),
            fmt_num(msgs_summary.max)
        ),
    ]);
    agg.push_row([
        "converged ms (mean/max)".to_string(),
        format!(
            "{} / {}",
            fmt_num(conv_summary.mean),
            fmt_num(conv_summary.max)
        ),
    ]);
    agg.push_row(["violations".to_string(), total_violations.to_string()]);

    if opts.csv {
        print!("{}", per_seed.to_csv());
        println!();
        print!("{}", agg.to_csv());
    } else {
        println!("{per_seed}");
        println!("{agg}");
    }

    if total_violations == 0 {
        println!(
            "specification: CD1-CD7 all satisfied across {} runs ✓",
            seeds.len()
        );
        true
    } else {
        println!(
            "specification VIOLATED in sweep: {total_violations} violations across {} runs",
            seeds.len()
        );
        false
    }
}

/// Prints the single-run tables and verdict (the original CLI contract).
fn print_single(
    opts: &Options,
    graph: &Graph,
    region: &Region,
    report: &RunReport<NodeId>,
) -> Result<bool, String> {
    let mut decisions = Table::new(
        format!("decisions ({} deciders)", report.decisions.len()),
        ["node", "region", "border", "coordinator", "at"],
    );
    for (node, d) in &report.decisions {
        decisions.push_row([
            node.to_string(),
            d.view.region().to_string(),
            d.view.border().to_string(),
            d.value.to_string(),
            d.at.to_string(),
        ]);
    }

    let mut cost = Table::new("cost", ["metric", "value"]);
    cost.push_row([
        "topology".to_string(),
        format!("{} ({} nodes)", opts.topology, graph.len()),
    ]);
    cost.push_row(["crashed region".to_string(), region.to_string()]);
    cost.push_row([
        "messages".to_string(),
        report.metrics.messages_sent().to_string(),
    ]);
    cost.push_row(["bytes".to_string(), report.metrics.bytes_sent().to_string()]);
    cost.push_row([
        "nodes involved".to_string(),
        format!(
            "{} / {}",
            report.metrics.nodes_with_traffic().len(),
            graph.len()
        ),
    ]);
    cost.push_row([
        "converged at (ms)".to_string(),
        fmt_num(report.last_decision_at().map_or(0.0, |t| t.as_millis_f64())),
    ]);

    if opts.csv {
        print!("{}", decisions.to_csv());
        println!();
        print!("{}", cost.to_csv());
    } else {
        println!("{decisions}");
        println!("{cost}");
    }

    let violations = check_spec(report);
    if violations.is_empty() {
        println!("specification: CD1-CD7 all satisfied ✓");
        Ok(true)
    } else {
        println!("specification VIOLATED:");
        for v in &violations {
            println!("  - {v}");
        }
        Ok(false)
    }
}

/// Which runtime `check` explores schedules of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CheckBackend {
    /// The deterministic simulator (delivery/crash schedule fuzzing
    /// with shrinking and replayable artifacts).
    Sim,
    /// The sharded live runtime, gated to one released event at a time
    /// — every explored schedule ran on real threads and real queues.
    Live,
}

/// Options of the `check` subcommand: the base scenario flags plus the
/// exploration knobs.
#[derive(Debug, Clone, PartialEq)]
struct CheckOptions {
    base: Options,
    budget: u64,
    policy: PolicyMix,
    stop_after: usize,
    artifact: Option<String>,
    shrink_scenario: bool,
    backend: CheckBackend,
    shards: usize,
}

/// Parses `check` arguments: exploration flags are extracted here, the
/// remainder goes through the ordinary scenario parser.
fn parse_check_args<I: Iterator<Item = String>>(args: I) -> Result<CheckOptions, String> {
    let mut budget: u64 = 1000;
    let mut policy = PolicyMix::Mixed;
    let mut stop_after: usize = 0;
    let mut artifact: Option<String> = None;
    let mut shrink_scenario = false;
    let mut backend = CheckBackend::Sim;
    let mut shards: usize = 2;
    let mut rest: Vec<String> = Vec::new();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--budget" => {
                budget = value("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?;
                if budget == 0 {
                    return Err("--budget wants at least one schedule".to_owned());
                }
            }
            "--policy" => policy = PolicyMix::parse(&value("--policy")?)?,
            "--stop-after" => {
                stop_after = value("--stop-after")?
                    .parse()
                    .map_err(|e| format!("--stop-after: {e}"))?
            }
            "--artifact" => artifact = Some(value("--artifact")?),
            "--shrink-scenario" => shrink_scenario = true,
            "--backend" => {
                backend = match value("--backend")?.as_str() {
                    "sim" => CheckBackend::Sim,
                    "live" => CheckBackend::Live,
                    other => return Err(format!("--backend wants sim or live, got {other:?}")),
                }
            }
            "--shards" => {
                shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if shards == 0 {
                    return Err("--shards wants a positive shard count".to_owned());
                }
            }
            _ => rest.push(arg),
        }
    }
    let base = parse_args(rest.into_iter())?;
    if base.runs != 1 {
        return Err("--runs does not apply to `check` (one scenario, many schedules)".to_owned());
    }
    if backend == CheckBackend::Live && artifact.is_some() {
        return Err(
            "--artifact applies to the sim backend only; live schedules replay by seed".to_owned(),
        );
    }
    if backend == CheckBackend::Live && shrink_scenario {
        return Err("--shrink-scenario applies to the sim backend only".to_owned());
    }
    Ok(CheckOptions {
        base,
        budget,
        policy,
        stop_after,
        artifact,
        shrink_scenario,
        backend,
        shards,
    })
}

/// The replayable scenario description embedded in a counterexample
/// artifact (mirrors [`options_from_spec`]).
fn spec_of(opts: &Options) -> BTreeMap<String, String> {
    let mut spec = BTreeMap::new();
    spec.insert("topology".to_owned(), opts.topology.clone());
    spec.insert("region".to_owned(), opts.region.clone());
    spec.insert("timing".to_owned(), opts.timing.clone());
    spec.insert("seed".to_owned(), opts.seed.to_string());
    if let Some(at) = opts.at {
        spec.insert("at".to_owned(), at.to_string());
    }
    for (key, on) in [
        ("optimized", opts.optimized),
        ("no-arbitration", opts.no_arbitration),
        ("invert-arbitration", opts.invert_arbitration),
        ("sequential-multicast", opts.sequential_multicast),
    ] {
        if on {
            spec.insert(key.to_owned(), "true".to_owned());
        }
    }
    spec
}

/// Rebuilds CLI options from an artifact's spec map (inverse of
/// [`spec_of`]; unknown keys are rejected so a typo cannot silently
/// replay a different scenario).
fn options_from_spec(spec: &BTreeMap<String, String>) -> Result<Options, String> {
    let mut opts = Options::default();
    for (key, value) in spec {
        match key.as_str() {
            "topology" => opts.topology = value.clone(),
            "region" => opts.region = value.clone(),
            "timing" => opts.timing = value.clone(),
            "seed" => opts.seed = value.parse().map_err(|e| format!("spec seed: {e}"))?,
            "at" => opts.at = Some(value.parse().map_err(|e| format!("spec at: {e}"))?),
            "optimized" => opts.optimized = value == "true",
            "no-arbitration" => opts.no_arbitration = value == "true",
            "invert-arbitration" => opts.invert_arbitration = value == "true",
            "sequential-multicast" => opts.sequential_multicast = value == "true",
            other => return Err(format!("unknown spec key {other:?} in artifact")),
        }
    }
    Ok(opts)
}

/// Derives the shrinkable topology family from the `--topology` spec:
/// only the sized regular families (`torus:<s>`, `ring:<n>`) support
/// size shrinking; anything else keeps its graph and shrinks crashes
/// and schedule only.
fn shrink_topology_of(spec: &str) -> ShrinkTopology {
    let num = |s: &str| s.parse::<usize>().ok();
    match spec.split(':').collect::<Vec<_>>().as_slice() {
        ["torus", side] => {
            num(side).map_or(ShrinkTopology::Fixed, |side| ShrinkTopology::Torus { side })
        }
        ["ring", n] => num(n).map_or(ShrinkTopology::Fixed, |n| ShrinkTopology::Ring { n }),
        _ => ShrinkTopology::Fixed,
    }
}

/// Runs the `check` subcommand. Returns `Ok(true)` when no schedule
/// violated the specification.
fn run_check(opts: &CheckOptions) -> Result<bool, String> {
    if opts.backend == CheckBackend::Live {
        return run_check_live(opts);
    }
    let base = &opts.base;
    let graph = parse_topology(&base.topology, base.seed)?;
    let region = parse_region(&base.region, &graph, base.at)?;
    parse_timing(&base.timing, base.seed)?;
    let scenario = scenario_for(base, &graph, &region, base.seed);
    let jobs = base.jobs.map(Jobs::new).unwrap_or_else(Jobs::from_env);
    let cfg = ExploreConfig {
        budget: opts.budget,
        seed: base.seed,
        policy: opts.policy,
        stop_after: opts.stop_after,
        ..ExploreConfig::default()
    };
    let outcome = explore_scenario(&scenario, &cfg, jobs);

    let mut summary = Table::new(
        format!(
            "adversarial schedule exploration ({} / {})",
            base.topology, base.region
        ),
        ["metric", "value"],
    );
    summary.push_row(["budget".to_owned(), opts.budget.to_string()]);
    summary.push_row([
        "schedules explored".to_owned(),
        outcome.schedules().to_string(),
    ]);
    summary.push_row([
        "unique orderings".to_owned(),
        outcome.unique_orderings().to_string(),
    ]);
    summary.push_row([
        "max deviations from FIFO".to_owned(),
        outcome.max_deviations().to_string(),
    ]);
    summary.push_row([
        "violating schedules".to_owned(),
        outcome.violating().to_string(),
    ]);
    summary.push_row([
        "counterexamples shrunk".to_owned(),
        outcome.counterexamples.len().to_string(),
    ]);
    summary.push_row([
        "min counterexample (decisions)".to_owned(),
        outcome
            .min_counterexample_len()
            .map_or("-".to_owned(), |n| n.to_string()),
    ]);
    summary.push_row([
        "policy / seed".to_owned(),
        format!("{:?} / {}", opts.policy, base.seed).to_lowercase(),
    ]);
    if base.csv {
        print!("{}", summary.to_csv());
    } else {
        println!("{summary}");
    }

    for (k, (probe_idx, ce)) in outcome.counterexamples.iter().enumerate() {
        println!(
            "## counterexample {}: probe {probe_idx}, shrunk {} -> {} scheduling decisions in {} replays\n",
            k + 1,
            ce.original_len,
            ce.schedule.len(),
            ce.shrink_runs
        );
        // Replay the minimized schedule for the human-readable diff of
        // the offending properties.
        let replayed = probe(&scenario, SchedulePolicy::Replay(ce.schedule.clone()));
        print!(
            "{}",
            render_violations(&replayed.report, &replayed.violations)
        );
        let artifact = Artifact::new(spec_of(base), ce);
        match (&opts.artifact, k) {
            (Some(path), 0) => {
                std::fs::write(path, artifact.render())
                    .map_err(|e| format!("writing {path:?}: {e}"))?;
                // Stderr keeps stdout byte-comparable across --jobs.
                eprintln!("wrote {path}");
            }
            _ => {
                println!("\nreplayable artifact (save and `precipice replay <file>`):\n");
                print!("{}", artifact.render());
            }
        }
        println!();
    }

    if opts.shrink_scenario && outcome.violating() > 0 {
        match shrink_scenario(&scenario, shrink_topology_of(&base.topology), &cfg) {
            Some(s) => {
                println!(
                    "## scenario shrink: {} -> {} nodes, {} -> {} crashes in {} oracle probes\n",
                    s.nodes_before,
                    s.nodes_after,
                    s.crashes_before,
                    s.crashes_after,
                    s.probes_spent
                );
                for &(node, at) in &s.scenario.crashes {
                    println!("crash {node} at {at}");
                }
                println!(
                    "minimized schedule ({} scheduling decisions): {}\n",
                    s.counterexample.schedule.len(),
                    s.counterexample.schedule
                );
                let replayed = probe(
                    &s.scenario,
                    SchedulePolicy::Replay(s.counterexample.schedule.clone()),
                );
                print!(
                    "{}",
                    render_violations(&replayed.report, &replayed.violations)
                );
                println!();
            }
            // The budgeted fuzz above may trip on schedules the
            // shrinker's small fixed oracle never reaches.
            None => println!("## scenario shrink: oracle found no violation within its budget\n"),
        }
    }

    if outcome.violating() == 0 {
        println!(
            "specification: CD1-CD7 hold on all {} explored schedules ✓",
            outcome.schedules()
        );
        Ok(true)
    } else {
        println!(
            "specification VIOLATED on {} of {} explored schedules",
            outcome.violating(),
            outcome.schedules()
        );
        Ok(false)
    }
}

/// Runs `check --backend live`: explores `budget` gated schedules of
/// the sharded live runtime (seeds `seed..seed+budget`) and checks
/// every resulting report against CD1–CD7. Each explored schedule ran
/// on real shard threads; a violating one is reproducible from its
/// seed alone (the gate makes the outcome a pure function of scenario
/// × seed, independent of shard count and machine speed).
fn run_check_live(opts: &CheckOptions) -> Result<bool, String> {
    let base = &opts.base;
    let graph = parse_topology(&base.topology, base.seed)?;
    let region = parse_region(&base.region, &graph, base.at)?;
    parse_timing(&base.timing, base.seed)?;
    let scenario = scenario_for(base, &graph, &region, base.seed);

    let mut explored = 0u64;
    let mut violating = 0u64;
    let mut orderings = BTreeSet::new();
    let mut worst: Option<(u64, RunReport<NodeId>)> = None;
    for i in 0..opts.budget {
        let seed = base.seed.wrapping_add(i);
        let report = precipice::runtime::probe_live(&scenario, opts.shards, seed);
        explored += 1;
        orderings.insert(report.trace_hash);
        if !check_spec(&report).is_empty() {
            violating += 1;
            if worst.is_none() {
                worst = Some((seed, report));
            }
            if opts.stop_after != 0 && violating as usize >= opts.stop_after {
                break;
            }
        }
    }

    let mut summary = Table::new(
        format!(
            "live-backend schedule exploration ({} / {})",
            base.topology, base.region
        ),
        ["metric", "value"],
    );
    summary.push_row(["budget".to_owned(), opts.budget.to_string()]);
    summary.push_row(["schedules explored".to_owned(), explored.to_string()]);
    summary.push_row(["unique orderings".to_owned(), orderings.len().to_string()]);
    summary.push_row(["violating schedules".to_owned(), violating.to_string()]);
    summary.push_row(["shards".to_owned(), opts.shards.to_string()]);
    summary.push_row(["first seed".to_owned(), base.seed.to_string()]);
    if base.csv {
        print!("{}", summary.to_csv());
    } else {
        println!("{summary}");
    }

    if let Some((seed, report)) = &worst {
        let violations = check_spec(report);
        println!("## first violating live schedule: seed {seed}\n");
        print!("{}", render_violations(report, &violations));
        let mut protocol_flags = String::new();
        if base.optimized {
            protocol_flags.push_str(" --optimized");
        }
        if base.no_arbitration {
            protocol_flags.push_str(" --no-arbitration");
        }
        if base.invert_arbitration {
            protocol_flags.push_str(" --invert-arbitration");
        }
        println!(
            "\nreproduce: precipice check --backend live --seed {seed} --budget 1 \
             --topology {} --region {} --timing {}{protocol_flags}",
            base.topology, base.region, base.timing
        );
        println!();
    }

    if violating == 0 {
        println!(
            "specification: CD1-CD7 hold on all {explored} live schedules ({} shards) ✓",
            opts.shards
        );
        Ok(true)
    } else {
        println!("specification VIOLATED on {violating} of {explored} live schedules");
        Ok(false)
    }
}

/// Runs the `serve` subcommand: a long-lived process speaking
/// line-delimited JSON on stdin/stdout (see
/// [`precipice::net::ServeSession`] for the protocol). Blank lines and
/// `#` comments are skipped, so scripted command files pipe straight
/// in. Exits cleanly on `shutdown` or stdin EOF.
fn run_serve(shards: usize) -> Result<bool, String> {
    use std::io::{BufRead, Write};
    let mut session = precipice::net::ServeSession::new(shards);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let response = session.handle_line(trimmed);
        writeln!(out, "{response}").map_err(|e| format!("writing stdout: {e}"))?;
        out.flush().map_err(|e| format!("flushing stdout: {e}"))?;
        if session.finished() {
            break;
        }
    }
    Ok(true)
}

/// Parses `serve` arguments (just `--shards`).
fn parse_serve_args<I: Iterator<Item = String>>(mut args: I) -> Result<usize, String> {
    let mut shards: usize = 2;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                shards = args
                    .next()
                    .ok_or("--shards requires a value")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if shards == 0 {
                    return Err("--shards wants a positive shard count".to_owned());
                }
            }
            "-h" | "--help" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown serve option {other:?}\n\n{USAGE}")),
        }
    }
    Ok(shards)
}

/// Runs the `replay` subcommand: re-executes a counterexample artifact
/// and verifies it reproduces. Returns `Ok(true)` on an exact
/// reproduction (same trace hash, same violation set).
fn run_replay(path: &str) -> Result<bool, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
    let artifact = Artifact::parse(&text)?;
    let opts = options_from_spec(&artifact.spec)?;
    let graph = parse_topology(&opts.topology, opts.seed)?;
    let region = parse_region(&opts.region, &graph, opts.at)?;
    parse_timing(&opts.timing, opts.seed)?;
    let scenario = scenario_for(&opts, &graph, &region, opts.seed);
    let replayed = probe(&scenario, SchedulePolicy::Replay(artifact.schedule.clone()));

    println!("# replaying {path}\n");
    println!(
        "scenario: topology={} region={} timing={} seed={}",
        opts.topology, opts.region, opts.timing, opts.seed
    );
    println!("schedule: {} scheduling decisions", artifact.schedule.len());
    let hash_ok = replayed.report.trace_hash == artifact.trace_hash;
    println!(
        "trace hash: {} (expected {:#x}, got {:#x})",
        if hash_ok { "match" } else { "MISMATCH" },
        artifact.trace_hash,
        replayed.report.trace_hash
    );
    let got: Vec<String> = replayed.violations.iter().map(|v| v.to_string()).collect();
    let violations_ok = got == artifact.violations;
    println!(
        "violations: {} ({} expected, {} observed)\n",
        if violations_ok {
            "reproduced"
        } else {
            "DIFFER"
        },
        artifact.violations.len(),
        got.len()
    );
    print!(
        "{}",
        render_violations(&replayed.report, &replayed.violations)
    );
    if hash_ok && violations_ok {
        println!("counterexample reproduced ✓");
        Ok(true)
    } else {
        println!("counterexample did NOT reproduce (artifact stale?)");
        Ok(false)
    }
}

/// `graph build <spec> -o <file> [--seed u64]` / `graph info <file>`.
///
/// Closed-form topologies (torus, grid, ring, path) stream to the file
/// through the two-pass row writer — no in-memory graph, so the spec can
/// be orders of magnitude larger than what a `--topology` run could
/// build per process. Everything else is materialized once and written.
fn run_graph<I: Iterator<Item = String>>(mut args: I) -> Result<bool, String> {
    match args.next().as_deref() {
        Some("build") => {
            let mut spec: Option<String> = None;
            let mut out: Option<String> = None;
            let mut seed: u64 = 0;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "-o" | "--out" => {
                        out = Some(args.next().ok_or("-o requires a file path")?);
                    }
                    "--seed" => {
                        seed = args
                            .next()
                            .ok_or("--seed requires a value")?
                            .parse()
                            .map_err(|e| format!("--seed: {e}"))?;
                    }
                    s if spec.is_none() && !s.starts_with('-') => spec = Some(arg),
                    other => {
                        return Err(format!("unknown graph build argument {other:?}\n\n{USAGE}"))
                    }
                }
            }
            let spec =
                spec.ok_or_else(|| format!("graph build wants a topology spec\n\n{USAGE}"))?;
            let out = out.ok_or_else(|| format!("graph build wants -o <file>\n\n{USAGE}"))?;
            let t0 = std::time::Instant::now();
            let (summary, mode) = stream_spec(&spec, &out, seed)?;
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            println!(
                "wrote {out}: n={} edges={} dense_rows={} bytes={} ({mode}, {ms:.1} ms)",
                fmt_num(summary.n as f64),
                fmt_num(summary.edge_count as f64),
                summary.dense_rows,
                fmt_num(summary.file_bytes as f64),
            );
            Ok(true)
        }
        Some("info") => {
            let path = match (args.next(), args.next()) {
                (Some(p), None) if !p.starts_with('-') => p,
                (Some(_), Some(extra)) => {
                    return Err(format!("graph info takes one file (unexpected {extra:?})"))
                }
                _ => return Err(format!("graph info wants a .pcsr file\n\n{USAGE}")),
            };
            let m = precipice::graph::MappedGraph::open(&path)
                .map_err(|e| format!("cannot open {path:?}: {e}"))?;
            println!("file:       {path}");
            println!("nodes:      {}", fmt_num(m.len() as f64));
            println!("edges:      {}", fmt_num(m.edge_count() as f64));
            println!("mask words: {}", m.mask_words());
            println!("dense rows: {}", m.dense_rows());
            println!("file bytes: {}", fmt_num(m.file_bytes() as f64));
            println!("checksum:   {:#018x}", m.recorded_checksum());
            match m.verify() {
                Ok(()) => {
                    println!("verify:     ok");
                    Ok(true)
                }
                Err(e) => {
                    println!("verify:     FAILED ({e})");
                    Ok(false)
                }
            }
        }
        _ => Err(format!(
            "graph wants a subcommand: build or info\n\n{USAGE}"
        )),
    }
}

/// Builds `spec` into `out`, streaming when the topology is closed-form.
/// Returns the write summary and which path was taken ("streamed" /
/// "materialized").
fn stream_spec(
    spec: &str,
    out: &str,
    seed: u64,
) -> Result<(precipice::graph::StoreSummary, &'static str), String> {
    use precipice::graph::{stream_grid, stream_path, stream_ring, stream_torus};
    let num = |s: &str| {
        s.parse::<usize>()
            .map_err(|e| format!("bad number {s:?}: {e}"))
    };
    let streamed = match spec.split(':').collect::<Vec<_>>().as_slice() {
        ["torus", side] => Some(stream_torus(GridDims::square(num(side)?), out)),
        ["grid", dims] => {
            let (w, h) = dims
                .split_once('x')
                .ok_or_else(|| format!("grid wants <w>x<h>, got {dims:?}"))?;
            Some(stream_grid(
                GridDims {
                    width: num(w)?,
                    height: num(h)?,
                },
                out,
            ))
        }
        ["ring", n] => Some(stream_ring(num(n)?, out)),
        ["path", n] => Some(stream_path(num(n)?, out)),
        _ => None,
    };
    match streamed {
        Some(result) => result
            .map(|s| (s, "streamed"))
            .map_err(|e| format!("cannot write {out:?}: {e}")),
        None => {
            let g = parse_topology(spec, seed)?;
            g.write_pcsr(out)
                .map(|s| (s, "materialized"))
                .map_err(|e| format!("cannot write {out:?}: {e}"))
        }
    }
}

fn main() -> ExitCode {
    // Runtime failures get an `error: ` prefix; parse/usage messages
    // stay bare (the long-standing contract of the single-run path).
    let runtime_err = |e: String| format!("error: {e}");
    let mut args = std::env::args().skip(1).peekable();
    let verdict = match args.peek().map(String::as_str) {
        Some("check") => {
            args.next();
            parse_check_args(args).and_then(|opts| run_check(&opts).map_err(runtime_err))
        }
        Some("graph") => {
            args.next();
            run_graph(args).map_err(|e| {
                if e.contains("cannot") {
                    runtime_err(e)
                } else {
                    e
                }
            })
        }
        Some("serve") => {
            args.next();
            parse_serve_args(args).and_then(|shards| run_serve(shards).map_err(runtime_err))
        }
        Some("replay") => {
            args.next();
            match (args.next(), args.next()) {
                (Some(path), None) if !path.starts_with('-') => {
                    run_replay(&path).map_err(runtime_err)
                }
                (Some(_), Some(extra)) => Err(format!(
                    "replay takes exactly one artifact path (unexpected {extra:?})"
                )),
                _ => Err(format!("replay wants an artifact path\n\n{USAGE}")),
            }
        }
        _ => parse_args(args).and_then(|opts| run(&opts).map_err(runtime_err)),
    };
    match verdict {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts, Options::default());
    }

    #[test]
    fn full_flag_set() {
        let opts = parse(&[
            "--topology",
            "ring:32",
            "--region",
            "nodes:1,2,3",
            "--at",
            "5",
            "--timing",
            "cascade:4ms",
            "--seed",
            "9",
            "--optimized",
            "--no-arbitration",
            "--sequential-multicast",
            "--csv",
            "--dot",
            "/tmp/x.dot",
            "--runs",
            "8",
            "--jobs",
            "3",
        ])
        .unwrap();
        assert_eq!(opts.topology, "ring:32");
        assert_eq!(opts.region, "nodes:1,2,3");
        assert_eq!(opts.at, Some(5));
        assert_eq!(opts.timing, "cascade:4ms");
        assert_eq!(opts.seed, 9);
        assert!(opts.optimized && opts.no_arbitration && opts.sequential_multicast && opts.csv);
        assert_eq!(opts.dot.as_deref(), Some("/tmp/x.dot"));
        assert_eq!(opts.runs, 8);
        assert_eq!(opts.jobs, Some(3));
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--seed"]).is_err(), "missing value");
        assert!(parse(&["--seed", "abc"]).is_err(), "bad value");
    }

    #[test]
    fn sweep_flags() {
        let opts = parse(&["--runs", "4", "--jobs", "2"]).unwrap();
        assert_eq!(opts.runs, 4);
        assert_eq!(opts.jobs, Some(2));
        assert!(parse(&["--runs", "0"]).is_err(), "zero runs");
        assert!(parse(&["--jobs", "0"]).is_err(), "zero workers");
        assert!(parse(&["--jobs", "many"]).is_err(), "bad value");
    }

    #[test]
    fn topology_specs() {
        assert_eq!(parse_topology("torus:4", 0).unwrap().len(), 16);
        assert_eq!(parse_topology("grid:3x5", 0).unwrap().len(), 15);
        assert_eq!(parse_topology("ring:7", 0).unwrap().len(), 7);
        assert_eq!(parse_topology("path:7", 0).unwrap().len(), 7);
        assert_eq!(parse_topology("star:7", 0).unwrap().len(), 7);
        assert_eq!(parse_topology("tree:9", 1).unwrap().len(), 9);
        assert!(parse_topology("geometric:30:0.4", 1)
            .unwrap()
            .is_connected());
        assert!(parse_topology("er:30:0.3", 1).unwrap().is_connected());
        assert!(parse_topology("moebius:4", 0).is_err());
        assert!(parse_topology("grid:3", 0).is_err());
    }

    #[test]
    fn region_specs() {
        let g = parse_topology("torus:6", 0).unwrap();
        assert_eq!(parse_region("blob:5", &g, None).unwrap().len(), 5);
        assert_eq!(parse_region("line:4", &g, Some(0)).unwrap().len(), 4);
        assert_eq!(parse_region("ball:1", &g, Some(7)).unwrap().len(), 5);
        let explicit = parse_region("nodes:1,3,5", &g, None).unwrap();
        assert_eq!(explicit.as_slice(), &[NodeId(1), NodeId(3), NodeId(5)]);
        assert!(parse_region("nodes:999", &g, None).is_err());
        assert!(parse_region("blob:x", &g, None).is_err());
        assert!(parse_region("blob:3", &g, Some(999)).is_err());
    }

    #[test]
    fn durations_and_timing() {
        assert_eq!(parse_duration("4ms").unwrap(), SimTime::from_millis(4));
        assert_eq!(parse_duration("250us").unwrap(), SimTime::from_micros(250));
        assert_eq!(parse_duration("1s").unwrap(), SimTime::from_secs(1));
        assert_eq!(parse_duration("7").unwrap(), SimTime::from_millis(7));
        assert!(parse_duration("4lightyears").is_err());
        assert!(matches!(
            parse_timing("simultaneous", 0).unwrap(),
            CrashTiming::Simultaneous(_)
        ));
        assert!(matches!(
            parse_timing("cascade:2ms", 0).unwrap(),
            CrashTiming::Cascade { .. }
        ));
        assert!(matches!(
            parse_timing("spread:50ms", 3).unwrap(),
            CrashTiming::Spread { .. }
        ));
        assert!(parse_timing("sometimes", 0).is_err());
    }

    #[test]
    fn end_to_end_run_is_clean() {
        let opts = Options {
            topology: "torus:6".into(),
            region: "blob:3".into(),
            timing: "cascade:2ms".into(),
            seed: 3,
            ..Options::default()
        };
        assert_eq!(run(&opts), Ok(true));
    }

    #[test]
    fn sweep_run_is_clean() {
        let opts = Options {
            topology: "torus:6".into(),
            region: "blob:3".into(),
            timing: "cascade:2ms".into(),
            seed: 3,
            runs: 4,
            jobs: Some(2),
            ..Options::default()
        };
        assert_eq!(run(&opts), Ok(true));
    }

    fn check_parse(args: &[&str]) -> Result<CheckOptions, String> {
        parse_check_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn check_flags_parse() {
        let opts = check_parse(&[
            "--topology",
            "ring:16",
            "--budget",
            "64",
            "--policy",
            "pcr",
            "--stop-after",
            "2",
            "--artifact",
            "/tmp/ce.txt",
            "--jobs",
            "2",
        ])
        .unwrap();
        assert_eq!(opts.base.topology, "ring:16");
        assert_eq!(opts.budget, 64);
        assert_eq!(opts.policy, PolicyMix::Pcr);
        assert_eq!(opts.stop_after, 2);
        assert_eq!(opts.artifact.as_deref(), Some("/tmp/ce.txt"));
        assert_eq!(opts.base.jobs, Some(2));

        let defaults = check_parse(&[]).unwrap();
        assert_eq!(defaults.budget, 1000);
        assert_eq!(defaults.policy, PolicyMix::Mixed);
        assert_eq!(defaults.stop_after, 0);
        assert!(defaults.artifact.is_none());
        assert!(!defaults.shrink_scenario);

        assert_eq!(
            check_parse(&["--policy", "guided"]).unwrap().policy,
            PolicyMix::Guided
        );
        assert!(check_parse(&["--shrink-scenario"]).unwrap().shrink_scenario);

        assert!(check_parse(&["--budget", "0"]).is_err());
        assert!(check_parse(&["--policy", "chaos"]).is_err());
        assert!(check_parse(&["--runs", "4"]).is_err(), "runs is sweep-only");
        assert!(check_parse(&["--bogus"]).is_err());

        let live = check_parse(&["--backend", "live", "--shards", "4"]).unwrap();
        assert_eq!(live.backend, CheckBackend::Live);
        assert_eq!(live.shards, 4);
        assert_eq!(check_parse(&[]).unwrap().backend, CheckBackend::Sim);
        assert!(check_parse(&["--backend", "quantum"]).is_err());
        assert!(check_parse(&["--shards", "0"]).is_err());
        assert!(
            check_parse(&["--backend", "live", "--artifact", "/tmp/x"]).is_err(),
            "live schedules replay by seed, not artifact"
        );
        assert!(
            check_parse(&["--backend", "live", "--shrink-scenario"]).is_err(),
            "scenario shrinking is a sim-backend feature"
        );
    }

    #[test]
    fn serve_args_parse() {
        let parse = |args: &[&str]| parse_serve_args(args.iter().map(|s| s.to_string()));
        assert_eq!(parse(&[]), Ok(2));
        assert_eq!(parse(&["--shards", "8"]), Ok(8));
        assert!(parse(&["--shards", "0"]).is_err());
        assert!(parse(&["--shards"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
    }

    #[test]
    fn check_clean_scenario_passes() {
        let opts = CheckOptions {
            base: Options {
                topology: "torus:5".into(),
                region: "blob:3".into(),
                timing: "cascade:2ms".into(),
                seed: 3,
                jobs: Some(2),
                ..Options::default()
            },
            budget: 48,
            policy: PolicyMix::Mixed,
            stop_after: 0,
            artifact: None,
            shrink_scenario: false,
            backend: CheckBackend::Sim,
            shards: 2,
        };
        assert_eq!(run_check(&opts), Ok(true));
    }

    #[test]
    fn live_check_clean_scenario_passes() {
        let opts = CheckOptions {
            base: Options {
                topology: "torus:5".into(),
                region: "blob:3".into(),
                timing: "cascade:2ms".into(),
                seed: 3,
                ..Options::default()
            },
            budget: 8,
            policy: PolicyMix::Mixed,
            stop_after: 0,
            artifact: None,
            shrink_scenario: false,
            backend: CheckBackend::Live,
            shards: 2,
        };
        assert_eq!(run_check(&opts), Ok(true));
    }

    #[test]
    fn live_check_catches_planted_bug() {
        let opts = CheckOptions {
            base: Options {
                topology: "path:9".into(),
                region: "nodes:3,4".into(),
                timing: "cascade:2ms".into(),
                seed: 0,
                invert_arbitration: true,
                ..Options::default()
            },
            budget: 48,
            policy: PolicyMix::Mixed,
            stop_after: 1,
            artifact: None,
            shrink_scenario: false,
            backend: CheckBackend::Live,
            shards: 2,
        };
        assert_eq!(
            run_check(&opts),
            Ok(false),
            "the planted bug must be caught on the live backend"
        );
    }

    #[test]
    fn check_catches_planted_bug_and_replay_reproduces() {
        let dir = std::env::temp_dir().join("precipice-check-test");
        std::fs::create_dir_all(&dir).unwrap();
        let artifact_path = dir.join("ce.txt");
        let opts = CheckOptions {
            base: Options {
                topology: "torus:5".into(),
                region: "blob:3".into(),
                timing: "cascade:2ms".into(),
                seed: 1,
                invert_arbitration: true,
                jobs: Some(1),
                ..Options::default()
            },
            budget: 64,
            policy: PolicyMix::Mixed,
            stop_after: 1,
            artifact: Some(artifact_path.to_string_lossy().into_owned()),
            shrink_scenario: false,
            backend: CheckBackend::Sim,
            shards: 2,
        };
        assert_eq!(
            run_check(&opts),
            Ok(false),
            "the planted bug must be caught"
        );
        let text = std::fs::read_to_string(&artifact_path).expect("artifact written");
        let artifact = Artifact::parse(&text).expect("artifact parses");
        assert!(!artifact.violations.is_empty());
        assert!(
            artifact.schedule.len() <= 25,
            "shrunk counterexample stays small, got {}",
            artifact.schedule.len()
        );
        assert_eq!(artifact.spec["invert-arbitration"], "true");
        // And the replay subcommand reproduces it bit-for-bit.
        assert_eq!(
            run_replay(&artifact_path.to_string_lossy()),
            Ok(true),
            "replay must reproduce the counterexample"
        );
    }

    #[test]
    fn spec_map_roundtrips_options() {
        let opts = Options {
            topology: "ring:12".into(),
            region: "nodes:1,2".into(),
            timing: "cascade:1ms".into(),
            seed: 9,
            at: Some(4),
            optimized: true,
            invert_arbitration: true,
            ..Options::default()
        };
        let spec = spec_of(&opts);
        let back = options_from_spec(&spec).unwrap();
        assert_eq!(back, opts);
        let mut bad = spec.clone();
        bad.insert("mystery".into(), "1".into());
        assert!(options_from_spec(&bad).is_err());
    }

    #[test]
    fn ablation_run_reports_violations_somewhere() {
        // Not every seed breaks, but this pinned one produces skew; we
        // only require that the run completes with a boolean verdict.
        let opts = Options {
            topology: "torus:8".into(),
            region: "line:4".into(),
            timing: "cascade:1ms".into(),
            seed: 1,
            no_arbitration: true,
            ..Options::default()
        };
        let verdict = run(&opts).expect("runs");
        let _ = verdict; // spec may or may not break for this seed; both are valid runs.
    }
}
